//! The memory-hierarchy engine: per-core L1D/L2, shared LLC, prefetchers,
//! off-chip predictors, the Hermes datapath, and DRAM — implementing the
//! core-facing [`MemoryPort`].
//!
//! ## Load path timing
//!
//! Latencies follow Table 4's load-to-use numbers: an L1 hit completes at
//! issue+5, an L2 hit at issue+15, an LLC hit at issue+55; an LLC miss
//! enters the memory controller's read queue at issue+55 and completes
//! when DRAM delivers. A Hermes request for a predicted-off-chip load
//! enters the read queue at issue+6 (Hermes-O) or issue+18 (Hermes-P)
//! instead — the regular miss later *merges* with it at the controller,
//! which is precisely how Hermes hides the on-chip hierarchy latency
//! (§6.2.1). A completed Hermes read that no demand merged into is
//! dropped without filling any cache (§6.2.2), keeping the hierarchy
//! coherent on a misprediction.
//!
//! ## Fills and evictions
//!
//! DRAM returns fill LLC+L2+L1 along the return path; LLC-hit data fills
//! L2+L1; prefetches fill only the LLC (they are LLC prefetchers, Table
//! 4). Dirty evictions propagate downward and become DRAM writebacks.
//! TTP observes every fill and every LLC eviction; the active prefetcher
//! observes LLC demand accesses and receives usefulness feedback.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use hermes::{
    Hmp, LoadContext, OffChipPredictor, Popet, Prediction, PredictorKind, PredictorStats, Ttp,
};
use hermes_cache::{CacheArray, MshrTable};
use hermes_cpu::{LoadIssue, MemoryPort, ServedBy, StoreIssue};
use hermes_dram::{Completion, MemoryController, ReqKind};
use hermes_prefetch::{self as pf, AccessCtx, PrefetchReq, Prefetcher};
use hermes_types::{Cycle, LineAddr};

use crate::config::SystemConfig;
use crate::translate::translate;

/// Maximum prefetch candidates accepted per triggering access.
const MAX_PF_PER_ACCESS: usize = 32;

/// LLC MSHR registers held back from prefetches so demands never starve.
const PF_MSHR_RESERVE: usize = 8;

/// A requester waiting on an L1 miss.
#[derive(Debug, Clone, Copy)]
struct L1Waiter {
    /// Core load token; `None` for stores (write-allocate fetches).
    token: Option<u64>,
    is_store: bool,
}

/// A core waiting on an LLC miss; `None` marks prefetch-only entries.
type LlcWaiter = Option<(usize, u64)>; // (core, trigger pc)

#[derive(Debug, Clone, Copy)]
enum Ev {
    LookupL2 {
        core: usize,
        line: LineAddr,
        pc: u64,
        retried: bool,
    },
    LookupLlc {
        core: usize,
        line: LineAddr,
        pc: u64,
        retried: bool,
    },
    HermesIssue {
        core: usize,
        line: LineAddr,
    },
    CompleteLoad {
        core: usize,
        token: u64,
        served: ServedBy,
    },
}

#[derive(Debug)]
struct HeapEntry {
    at: Cycle,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// What the predictor said about an in-flight load, kept until training.
#[derive(Debug, Clone, Copy)]
struct LoadRec {
    ctx: LoadContext,
    pred: Prediction,
    issue: Cycle,
}

enum PredictorImpl {
    None,
    Popet(Box<Popet>),
    Hmp(Box<Hmp>),
    Ttp(Box<Ttp>),
    /// Oracle: resolved by peeking the hierarchy at prediction time.
    Ideal,
}

/// Per-core hierarchy statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreHierStats {
    /// Demand accesses reaching the LLC.
    pub llc_demand_accesses: u64,
    /// Demand accesses missing the LLC (the MPKI numerator).
    pub llc_demand_misses: u64,
    /// Hermes requests issued to the memory controller.
    pub hermes_requests: u64,
    /// Prefetches issued to DRAM on behalf of this core.
    pub prefetches_issued: u64,
    /// Prefetched lines this core demanded (useful prefetches).
    pub prefetches_useful: u64,
    /// L1D accesses (power model).
    pub l1_accesses: u64,
    /// L2 accesses (power model).
    pub l2_accesses: u64,
    /// Sum over off-chip loads of total latency (issue -> data).
    pub offchip_latency_sum: u64,
    /// Sum over off-chip loads of the on-chip portion (issue -> MC).
    pub offchip_onchip_portion_sum: u64,
    /// Off-chip demand loads observed at the hierarchy.
    pub offchip_loads: u64,
}

/// See [module docs](self).
pub struct Hierarchy {
    cfg: SystemConfig,
    l1: Vec<CacheArray>,
    l2: Vec<CacheArray>,
    llc: CacheArray,
    l1_mshr: Vec<MshrTable<L1Waiter>>,
    l2_mshr: Vec<MshrTable<()>>,
    llc_mshr: MshrTable<LlcWaiter>,
    dram: MemoryController,
    prefetchers: Vec<Box<dyn Prefetcher>>,
    predictors: Vec<PredictorImpl>,
    pred_stats: Vec<PredictorStats>,
    loads: HashMap<u64, LoadRec>,
    events: BinaryHeap<Reverse<HeapEntry>>,
    seq: u64,
    finished: Vec<(usize, u64, ServedBy)>,
    stats: Vec<CoreHierStats>,
    dram_buf: Vec<Completion>,
    pf_buf: Vec<PrefetchReq>,
    /// Deferred L1 accesses waiting on a free MSHR:
    /// (retry_at, core, line, token, is_store, pc).
    retry_l1: Vec<(Cycle, usize, LineAddr, Option<u64>, bool, u64)>,
}

fn key(core: usize, token: u64) -> u64 {
    ((core as u64) << 48) | token
}

fn pc_sig(pc: u64) -> u16 {
    (hermes_types::mix64(pc) & 0x3FFF) as u16
}

impl Hierarchy {
    /// Builds the hierarchy for `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate();
        let n = cfg.cores;
        let predictors = (0..n)
            .map(|_| match cfg.hermes.predictor {
                PredictorKind::None => PredictorImpl::None,
                PredictorKind::Popet => {
                    PredictorImpl::Popet(Box::new(Popet::new(cfg.popet.clone())))
                }
                PredictorKind::Hmp => PredictorImpl::Hmp(Box::new(Hmp::new())),
                PredictorKind::Ttp => PredictorImpl::Ttp(Box::default()),
                PredictorKind::Ideal => PredictorImpl::Ideal,
            })
            .collect();
        Self {
            l1: (0..n).map(|_| CacheArray::new(&cfg.l1)).collect(),
            l2: (0..n).map(|_| CacheArray::new(&cfg.l2)).collect(),
            llc: CacheArray::new(&cfg.shared_llc()),
            l1_mshr: (0..n).map(|_| MshrTable::new(cfg.l1.mshrs)).collect(),
            l2_mshr: (0..n).map(|_| MshrTable::new(cfg.l2.mshrs)).collect(),
            llc_mshr: MshrTable::new(cfg.shared_llc().mshrs),
            dram: MemoryController::new(cfg.dram.clone()),
            prefetchers: (0..n).map(|_| pf::build(cfg.prefetcher)).collect(),
            predictors,
            pred_stats: vec![PredictorStats::default(); n],
            loads: HashMap::new(),
            events: BinaryHeap::new(),
            seq: 0,
            finished: Vec::new(),
            stats: vec![CoreHierStats::default(); n],
            dram_buf: Vec::new(),
            pf_buf: Vec::new(),
            retry_l1: Vec::new(),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Per-core hierarchy statistics.
    pub fn core_stats(&self) -> &[CoreHierStats] {
        &self.stats
    }

    /// Per-core predictor confusion matrices.
    pub fn predictor_stats(&self) -> &[PredictorStats] {
        &self.pred_stats
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> &hermes_dram::controller::DramStats {
        self.dram.stats()
    }

    /// Zeroes accumulated statistics (warmup boundary). Microarchitectural
    /// state (caches, predictors, prefetchers) is preserved.
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = CoreHierStats::default();
        }
        for s in &mut self.pred_stats {
            *s = PredictorStats::default();
        }
        // Statistics only: in-flight reads must survive the boundary or
        // their waiters (MSHRs, cores) would strand.
        self.dram.reset_stats();
    }

    fn schedule(&mut self, at: Cycle, ev: Ev) {
        self.seq += 1;
        self.events.push(Reverse(HeapEntry {
            at,
            seq: self.seq,
            ev,
        }));
    }

    fn predict(&mut self, core: usize, ctx: &LoadContext) -> Prediction {
        match &mut self.predictors[core] {
            PredictorImpl::None => Prediction::negative(),
            PredictorImpl::Popet(p) => p.predict(ctx),
            PredictorImpl::Hmp(h) => h.predict(ctx),
            PredictorImpl::Ttp(t) => t.predict(ctx),
            PredictorImpl::Ideal => {
                let present = self.l1[core].probe(ctx.pline)
                    || self.l2[core].probe(ctx.pline)
                    || self.llc.probe(ctx.pline);
                Prediction {
                    go_offchip: !present,
                    meta: hermes::predictor::PredictionMeta::None,
                }
            }
        }
    }

    fn train(&mut self, core: usize, rec: &LoadRec, went_offchip: bool) {
        self.pred_stats[core].record(rec.pred.go_offchip, went_offchip);
        match &mut self.predictors[core] {
            PredictorImpl::Popet(p) => p.train(&rec.ctx, &rec.pred, went_offchip),
            PredictorImpl::Hmp(h) => h.train(&rec.ctx, &rec.pred, went_offchip),
            PredictorImpl::Ttp(t) => t.train(&rec.ctx, &rec.pred, went_offchip),
            PredictorImpl::None | PredictorImpl::Ideal => {}
        }
    }

    fn notify_fill(&mut self, core: usize, line: LineAddr) {
        if let PredictorImpl::Ttp(t) = &mut self.predictors[core] {
            t.on_cache_fill(line);
        }
    }

    fn notify_llc_eviction(&mut self, line: LineAddr) {
        for p in &mut self.predictors {
            if let PredictorImpl::Ttp(t) = p {
                t.on_llc_eviction(line);
            }
        }
    }

    /// Completes a demand load: trains the predictor and queues the
    /// core callback.
    fn finish_demand(&mut self, core: usize, token: u64, served: ServedBy, now: Cycle) {
        if let Some(rec) = self.loads.remove(&key(core, token)) {
            let offchip = served.is_offchip();
            if self.cfg.hermes.enabled() {
                self.train(core, &rec, offchip);
            }
            if offchip {
                let s = &mut self.stats[core];
                s.offchip_loads += 1;
                s.offchip_latency_sum += now.saturating_sub(rec.issue);
                s.offchip_onchip_portion_sum += self.cfg.hierarchy_latency() as u64;
            }
        }
        self.finished.push((core, token, served));
    }

    /// L1 access for a load or store at `now`.
    fn access_l1(
        &mut self,
        core: usize,
        line: LineAddr,
        token: Option<u64>,
        is_store: bool,
        pc: u64,
        now: Cycle,
    ) {
        self.stats[core].l1_accesses += 1;
        let res = self.l1[core].access(line, pc_sig(pc));
        if res.hit {
            if is_store {
                self.l1[core].mark_dirty(line);
            }
            if let Some(tok) = token {
                let at = now + self.cfg.l1.latency as Cycle;
                self.schedule(
                    at,
                    Ev::CompleteLoad {
                        core,
                        token: tok,
                        served: ServedBy::L1,
                    },
                );
            }
            return;
        }
        match self.l1_mshr[core].allocate(line, L1Waiter { token, is_store }, false) {
            Ok(true) => {
                let at = now + (self.cfg.l1.latency + self.cfg.l2.latency) as Cycle;
                self.schedule(
                    at,
                    Ev::LookupL2 {
                        core,
                        line,
                        pc,
                        retried: false,
                    },
                );
            }
            Ok(false) => {}
            Err(_) => {
                // Structural stall: retry the whole L1 access after the
                // retry delay (the repeated tag lookup is charged to the
                // power model).
                let at = now + self.cfg.mshr_retry as Cycle;
                self.retry_l1.push((at, core, line, token, is_store, pc));
            }
        }
    }

    fn lookup_l2(&mut self, core: usize, line: LineAddr, pc: u64, retried: bool, now: Cycle) {
        if !retried {
            self.stats[core].l2_accesses += 1;
        }
        let res = self.l2[core].access(line, pc_sig(pc));
        if res.hit {
            self.complete_l1_path(core, line, ServedBy::L2, now);
            return;
        }
        match self.l2_mshr[core].allocate(line, (), false) {
            Ok(true) => {
                let at = now + self.cfg.llc_per_core.latency as Cycle;
                self.schedule(
                    at,
                    Ev::LookupLlc {
                        core,
                        line,
                        pc,
                        retried: false,
                    },
                );
            }
            Ok(false) => {}
            Err(_) => {
                let at = now + self.cfg.mshr_retry as Cycle;
                self.schedule(
                    at,
                    Ev::LookupL2 {
                        core,
                        line,
                        pc,
                        retried: true,
                    },
                );
            }
        }
    }

    fn lookup_llc(&mut self, core: usize, line: LineAddr, pc: u64, retried: bool, now: Cycle) {
        let res = self.llc.access(line, pc_sig(pc));
        if !retried {
            self.stats[core].llc_demand_accesses += 1;
            if res.first_demand_on_prefetch {
                self.stats[core].prefetches_useful += 1;
                self.prefetchers[core].on_prefetch_hit(line);
            }
            // Prefetcher observes every demand access at this level.
            let mut buf = std::mem::take(&mut self.pf_buf);
            buf.clear();
            self.prefetchers[core].on_access(
                &AccessCtx {
                    pc,
                    line,
                    hit: res.hit,
                },
                &mut buf,
            );
            buf.truncate(MAX_PF_PER_ACCESS);
            for req in &buf {
                self.issue_prefetch(core, line, req.line, now);
            }
            self.pf_buf = buf;
        }

        if res.hit {
            self.fill_l2(core, line, false, now);
            self.complete_l2_path(core, line, ServedBy::Llc, now);
            return;
        }
        if !retried {
            self.stats[core].llc_demand_misses += 1;
        }
        let was_prefetch_only = self.llc_mshr.is_prefetch_only(line);
        match self.llc_mshr.allocate(line, Some((core, pc)), false) {
            Ok(true) => {
                let _ = self.dram.enqueue_read(line, now, ReqKind::Demand);
            }
            Ok(false) => {
                // Merged into an outstanding miss; if it was a pure
                // prefetch, that prefetch was accurate but late.
                if was_prefetch_only == Some(true) {
                    self.prefetchers[core].on_late_prefetch(line);
                }
            }
            Err(_) => {
                let at = now + self.cfg.mshr_retry as Cycle;
                self.schedule(
                    at,
                    Ev::LookupLlc {
                        core,
                        line,
                        pc,
                        retried: true,
                    },
                );
            }
        }
    }

    /// Issues one prefetch candidate, enforcing the same-physical-page
    /// rule (the next virtual page's frame is unknowable to hardware, so
    /// crossing a page boundary fetches unrelated data) and an MSHR
    /// reservation so prefetches cannot starve demand misses.
    fn issue_prefetch(&mut self, core: usize, trigger: LineAddr, line: LineAddr, now: Cycle) {
        if line.page_number() != trigger.page_number() {
            return;
        }
        if self.llc_mshr.in_use() + PF_MSHR_RESERVE >= self.llc_mshr.capacity() {
            return;
        }
        if self.llc.probe(line) || self.llc_mshr.contains(line) {
            return;
        }
        if self.llc_mshr.allocate(line, None, true) == Ok(true) {
            self.stats[core].prefetches_issued += 1;
            // May merge into an in-flight read (e.g. a Hermes request to
            // the same line) at the controller — no duplicate traffic,
            // but the prefetcher keeps its feedback loop.
            let _ = self.dram.enqueue_read(line, now, ReqKind::Prefetch);
        }
    }

    /// Fills the LLC, handling eviction side effects.
    fn fill_llc(&mut self, line: LineAddr, dirty: bool, prefetched: bool, sig: u16, now: Cycle) {
        if let Some(ev) = self.llc.fill(line, dirty, prefetched, sig) {
            if ev.was_unused_prefetch {
                for p in &mut self.prefetchers {
                    p.on_unused_eviction(ev.line);
                }
            }
            self.notify_llc_eviction(ev.line);
            if ev.dirty {
                self.dram.enqueue_write(ev.line, now);
            }
        }
        // TTP is a core-side structure (§7.2): it observes fills returning
        // to the core, not prefetch fills happening inside the LLC. This
        // blindness to prefetched lines is precisely what destroys its
        // accuracy under a high-coverage prefetcher (paper Fig. 9).
        if !prefetched {
            for c in 0..self.cfg.cores {
                self.notify_fill(c, line);
            }
        }
    }

    /// Fills a core's L2, propagating dirty evictions to the LLC.
    fn fill_l2(&mut self, core: usize, line: LineAddr, dirty: bool, now: Cycle) {
        if let Some(ev) = self.l2[core].fill(line, dirty, false, 0) {
            if ev.dirty && !self.llc.mark_dirty(ev.line) {
                self.fill_llc(ev.line, true, false, 0, now);
            }
        }
        self.notify_fill(core, line);
    }

    /// Fills a core's L1 and completes all waiters registered in its L1
    /// MSHR for `line`.
    fn complete_l1_path(&mut self, core: usize, line: LineAddr, served: ServedBy, now: Cycle) {
        let Some((waiters, _)) = self.l1_mshr[core].complete(line) else {
            return;
        };
        let any_store = waiters.iter().any(|w| w.is_store);
        if let Some(ev) = self.l1[core].fill(line, any_store, false, 0) {
            if ev.dirty && !self.l2[core].mark_dirty(ev.line) {
                self.fill_l2(core, ev.line, true, now);
            }
        }
        self.notify_fill(core, line);
        for w in waiters {
            if let Some(tok) = w.token {
                self.finish_demand(core, tok, served, now);
            }
        }
    }

    /// Completes an L2 miss (fills L2 already done by caller for hits;
    /// for DRAM fills the caller fills L2 first) and then the L1 path.
    fn complete_l2_path(&mut self, core: usize, line: LineAddr, served: ServedBy, now: Cycle) {
        let completed = self.l2_mshr[core].complete(line);
        debug_assert!(completed.is_some(), "L2 path completion without MSHR entry");
        self.complete_l1_path(core, line, served, now);
    }

    fn handle_dram_completion(&mut self, c: Completion, now: Cycle) {
        if let Some((waiters, prefetch_only)) = self.llc_mshr.complete(c.line) {
            let sig = waiters
                .iter()
                .flatten()
                .next()
                .map(|&(_, pc)| pc_sig(pc))
                .unwrap_or(0);
            self.fill_llc(c.line, false, prefetch_only, sig, now);
            for w in waiters.into_iter().flatten() {
                let (core, _pc) = w;
                self.fill_l2(core, c.line, false, now);
                self.complete_l2_path(core, c.line, ServedBy::Dram, now);
            }
        } else {
            // A Hermes read no demand ever merged into: dropped without
            // filling any cache (§6.2.2).
            debug_assert!(
                c.hermes_initiated && !c.demanded,
                "unmatched DRAM completion that is not a dropped Hermes read"
            );
        }
    }

    fn handle_event(&mut self, ev: Ev, now: Cycle) {
        match ev {
            Ev::LookupL2 {
                core,
                line,
                pc,
                retried,
            } => self.lookup_l2(core, line, pc, retried, now),
            Ev::LookupLlc {
                core,
                line,
                pc,
                retried,
            } => self.lookup_llc(core, line, pc, retried, now),
            Ev::HermesIssue { core, line } => {
                self.stats[core].hermes_requests += 1;
                let _ = self.dram.enqueue_read(line, now, ReqKind::Hermes);
            }
            Ev::CompleteLoad {
                core,
                token,
                served,
            } => {
                self.finish_demand(core, token, served, now);
            }
        }
    }

    /// Advances the hierarchy to `now`: processes due events and DRAM
    /// completions. Finished loads accumulate in the internal buffer
    /// drained by [`Hierarchy::drain_finished`].
    pub fn tick(&mut self, now: Cycle) {
        // Retries first (they were scheduled in a side queue).
        let mut i = 0;
        while i < self.retry_l1.len() {
            if self.retry_l1[i].0 <= now {
                let (_, core, line, token, is_store, pc) = self.retry_l1.swap_remove(i);
                self.access_l1(core, line, token, is_store, pc, now);
            } else {
                i += 1;
            }
        }
        while let Some(Reverse(entry)) = self.events.peek() {
            if entry.at > now {
                break;
            }
            let Reverse(entry) = self.events.pop().expect("peeked");
            self.handle_event(entry.ev, now);
        }
        let mut buf = std::mem::take(&mut self.dram_buf);
        self.dram.pop_completions(now, &mut buf);
        for c in buf.drain(..) {
            self.handle_dram_completion(c, now);
        }
        self.dram_buf = buf;
    }

    /// Drains (core, token, served) completions for delivery to cores.
    pub fn drain_finished(&mut self, out: &mut Vec<(usize, u64, ServedBy)>) {
        out.clear();
        out.append(&mut self.finished);
    }

    /// Oracle visibility for tests: whether a line is present at any level
    /// for `core`.
    pub fn present_anywhere(&self, core: usize, line: LineAddr) -> bool {
        self.l1[core].probe(line) || self.l2[core].probe(line) || self.llc.probe(line)
    }

    /// Prefetcher storage in bits (Table 6 rows).
    pub fn prefetcher_storage_bits(&self) -> usize {
        self.prefetchers
            .first()
            .map(|p| p.storage_bits())
            .unwrap_or(0)
    }
}

impl MemoryPort for Hierarchy {
    fn issue_load(&mut self, req: LoadIssue, now: Cycle) {
        let paddr = translate(req.core, req.vaddr);
        let pline = paddr.line();
        let ctx = LoadContext {
            pc: req.pc,
            vaddr: req.vaddr,
            pline,
        };
        if self.cfg.hermes.enabled() {
            let pred = self.predict(req.core, &ctx);
            if pred.go_offchip && !self.cfg.hermes.passive {
                let at = now + self.cfg.hermes.issue_latency as Cycle;
                self.schedule(
                    at,
                    Ev::HermesIssue {
                        core: req.core,
                        line: pline,
                    },
                );
            }
            self.loads.insert(
                key(req.core, req.token),
                LoadRec {
                    ctx,
                    pred,
                    issue: now,
                },
            );
        } else {
            self.loads.insert(
                key(req.core, req.token),
                LoadRec {
                    ctx,
                    pred: Prediction::negative(),
                    issue: now,
                },
            );
        }
        self.access_l1(req.core, pline, Some(req.token), false, req.pc, now);
    }

    fn issue_store(&mut self, req: StoreIssue, now: Cycle) {
        let pline = translate(req.core, req.vaddr).line();
        self.access_l1(req.core, pline, None, true, req.pc, now);
    }
}
