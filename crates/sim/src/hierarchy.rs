//! The memory-hierarchy engine: a configurable pipeline of cache levels,
//! prefetchers, off-chip predictors, the Hermes datapath, and DRAM —
//! implementing the core-facing [`MemoryPort`].
//!
//! ## Topology
//!
//! The hierarchy is a `Vec<CacheLevel>` built from
//! [`SystemConfig::level_configs`] (innermost level first). The default
//! is the paper's three-level stack — private L1D, private L2, shared
//! LLC — but any depth ≥ 2 works, with each level private per core or
//! shared by all cores ([`hermes_cache::LevelScope`]). Three level roles
//! fall out of the position in the stack:
//!
//! * **first level** (always private) — the level the core pipeline
//!   talks to: it tracks load tokens and store write-allocates in its
//!   MSHRs and is where full-MSHR accesses park in the retry queue;
//! * **intermediate levels** — pure lookup/merge stages;
//! * **last level** (always shared) — hosts the data prefetchers, feeds
//!   the memory controller, and defines the *off-chip boundary*: a load
//!   missing here is the positive class Hermes predicts
//!   ([`hermes_cpu::ServedBy::Dram`]), regardless of depth.
//!
//! Hermes prediction fires when the load issues at the first level and
//! trains when the load resolves, exactly as in the fixed pipeline.
//!
//! ## Load path timing
//!
//! Latencies follow Table 4's load-to-use numbers, generalised per level:
//! a first-level hit completes at issue+`lat₀`; a lookup at level *i*+1
//! is scheduled `lat_{i+1}` cycles after the miss at level *i* (so the
//! default's L2 hit lands at issue+15 and LLC hit at issue+55); a
//! last-level miss enters the memory controller's read queue with the
//! full on-chip latency already paid and completes when DRAM delivers. A
//! Hermes request for a predicted-off-chip load enters the read queue at
//! issue+6 (Hermes-O) or issue+18 (Hermes-P) instead — the regular miss
//! later *merges* with it at the controller, which is precisely how
//! Hermes hides the on-chip hierarchy latency (§6.2.1). A completed
//! Hermes read that no demand merged into is dropped without filling any
//! cache (§6.2.2), keeping the hierarchy coherent on a misprediction.
//!
//! ## Fills and evictions
//!
//! A fill returning from DRAM (or from a hit at an outer level) walks the
//! stack inward, filling every level on the requesting core's path and
//! completing each level's MSHR entry — resuming merged requesters from
//! other cores where a shared level joined their paths. Dirty victims
//! propagate outward level by level and become DRAM writebacks when the
//! last level evicts them. Prefetches fill only the last level (they are
//! last-level prefetchers, Table 4). TTP observes every fill and every
//! last-level eviction; the active prefetcher observes last-level demand
//! accesses and receives usefulness feedback.
//!
//! ## Retry queue
//!
//! First-level accesses rejected by a full MSHR table park in a retry
//! queue and re-execute the full access (tag lookup included, which is
//! deliberately re-charged to the power model) after `mshr_retry`
//! cycles. The queue keeps the historical `Vec` + swap-remove scan —
//! whose exact (path-dependent) processing order the regression goldens
//! are bit-for-bit sensitive to, ruling out a reordering container like
//! a min-heap — but caches the minimum due time so the common
//! nothing-due tick is a single comparison instead of an O(n) sweep of
//! every pending entry. The cached minimum also feeds
//! [`Hierarchy::next_event_at`] for idle-cycle fast-forward.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use hermes::{
    Hmp, LoadContext, OffChipPredictor, Popet, Prediction, PredictorKind, PredictorStats, Ttp,
};
use hermes_cache::{CacheLevel, LevelStats};
use hermes_cpu::{LoadIssue, MemoryPort, ServedBy, StoreIssue};
use hermes_dram::{Completion, MemoryController, ReqKind};
use hermes_prefetch::{self as pf, AccessCtx, PrefetchReq, Prefetcher};
use hermes_types::{Cycle, LineAddr};

use crate::config::SystemConfig;
use crate::translate::translate;

/// Maximum prefetch candidates accepted per triggering access.
const MAX_PF_PER_ACCESS: usize = 32;

/// Last-level MSHR registers held back from prefetches so demands never
/// starve.
const PF_MSHR_RESERVE: usize = 8;

/// An MSHR waiter payload; which variants appear at a level follows from
/// the level's role (see module docs).
#[derive(Debug, Clone, Copy)]
enum Waiter {
    /// First level: a core access awaiting data. `token` is `None` for
    /// stores (write-allocate fetches).
    Request { token: Option<u64>, is_store: bool },
    /// Intermediate level: a merged request chain from `core`, resumed
    /// towards the core when the fill arrives.
    Merge { core: usize },
    /// Last level: a demand miss from `core` (the `pc` feeds SHiP's fill
    /// signature).
    Demand { core: usize, pc: u64 },
    /// Last level: a prefetch-only requester.
    Prefetch,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Demand lookup reaching `level` (≥ 1; the first level is accessed
    /// synchronously at issue).
    Lookup {
        level: usize,
        core: usize,
        line: LineAddr,
        pc: u64,
        retried: bool,
    },
    HermesIssue {
        core: usize,
        line: LineAddr,
    },
    CompleteLoad {
        core: usize,
        token: u64,
        served: ServedBy,
    },
}

#[derive(Debug)]
struct HeapEntry {
    at: Cycle,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A first-level access deferred by MSHR exhaustion, waiting in the
/// retry queue.
#[derive(Debug, Clone, Copy)]
struct Retry {
    at: Cycle,
    core: usize,
    line: LineAddr,
    token: Option<u64>,
    is_store: bool,
    pc: u64,
}

/// What the predictor said about an in-flight load, kept until training.
#[derive(Debug, Clone, Copy)]
struct LoadRec {
    ctx: LoadContext,
    pred: Prediction,
    issue: Cycle,
}

enum PredictorImpl {
    None,
    Popet(Box<Popet>),
    Hmp(Box<Hmp>),
    Ttp(Box<Ttp>),
    /// Oracle: resolved by peeking the hierarchy at prediction time.
    Ideal,
}

/// Per-core hierarchy statistics.
///
/// The level-indexed counters keep their historical three-level names:
/// `l1_accesses` counts the first level, `l2_accesses` every
/// intermediate level combined, and `llc_demand_*` the last level,
/// whatever the configured depth.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreHierStats {
    /// Demand accesses reaching the last level.
    pub llc_demand_accesses: u64,
    /// Demand accesses missing the last level (the MPKI numerator).
    pub llc_demand_misses: u64,
    /// Hermes requests issued to the memory controller.
    pub hermes_requests: u64,
    /// Prefetches issued to DRAM on behalf of this core.
    pub prefetches_issued: u64,
    /// Prefetched lines this core demanded (useful prefetches).
    pub prefetches_useful: u64,
    /// First-level accesses (power model).
    pub l1_accesses: u64,
    /// Intermediate-level accesses (power model).
    pub l2_accesses: u64,
    /// Sum over off-chip loads of total latency (issue -> data).
    pub offchip_latency_sum: u64,
    /// Sum over off-chip loads of the on-chip portion (issue -> MC).
    pub offchip_onchip_portion_sum: u64,
    /// Off-chip demand loads observed at the hierarchy.
    pub offchip_loads: u64,
}

/// See [module docs](self).
pub struct Hierarchy {
    cfg: SystemConfig,
    /// The cache stack, innermost first; `len() >= 2`, first private,
    /// last shared (enforced by [`SystemConfig::validate`]).
    levels: Vec<CacheLevel<Waiter>>,
    /// Cached [`SystemConfig::hierarchy_latency`] (hot in
    /// `finish_demand`).
    onchip_latency: u32,
    dram: MemoryController,
    prefetchers: Vec<Box<dyn Prefetcher>>,
    predictors: Vec<PredictorImpl>,
    pred_stats: Vec<PredictorStats>,
    loads: HashMap<u64, LoadRec>,
    events: BinaryHeap<Reverse<HeapEntry>>,
    seq: u64,
    finished: Vec<(usize, u64, ServedBy)>,
    stats: Vec<CoreHierStats>,
    dram_buf: Vec<Completion>,
    pf_buf: Vec<PrefetchReq>,
    /// Deferred first-level accesses (exact legacy scan order — see
    /// module docs).
    retries: Vec<Retry>,
    /// Cached `min(retries[..].at)` (`Cycle::MAX` when empty): the O(1)
    /// nothing-due test for `tick` and the retry term of
    /// [`Hierarchy::next_event_at`].
    retry_min: Cycle,
}

fn key(core: usize, token: u64) -> u64 {
    // Tokens are per-core sequence numbers; 48 bits last ~2.8e14
    // instructions per core, far beyond any run. The assert guards the
    // packing against silently aliasing two in-flight loads if that
    // assumption ever breaks.
    debug_assert!(
        token < 1 << 48,
        "load token {token:#x} overflows key packing"
    );
    debug_assert!(core < 1 << 16, "core id {core} overflows key packing");
    ((core as u64) << 48) | token
}

fn pc_sig(pc: u64) -> u16 {
    (hermes_types::mix64(pc) & 0x3FFF) as u16
}

impl Hierarchy {
    /// Builds the hierarchy for `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate();
        let n = cfg.cores;
        let predictors = (0..n)
            .map(|_| match cfg.hermes.predictor {
                PredictorKind::None => PredictorImpl::None,
                PredictorKind::Popet => {
                    PredictorImpl::Popet(Box::new(Popet::new(cfg.popet.clone())))
                }
                PredictorKind::Hmp => PredictorImpl::Hmp(Box::new(Hmp::new())),
                PredictorKind::Ttp => PredictorImpl::Ttp(Box::default()),
                PredictorKind::Ideal => PredictorImpl::Ideal,
            })
            .collect();
        let levels = cfg
            .level_configs()
            .into_iter()
            .map(|lc| CacheLevel::new(lc, n))
            .collect();
        Self {
            levels,
            onchip_latency: cfg.hierarchy_latency(),
            dram: MemoryController::new(cfg.dram.clone()),
            prefetchers: (0..n).map(|_| pf::build(cfg.prefetcher)).collect(),
            predictors,
            pred_stats: vec![PredictorStats::default(); n],
            loads: HashMap::new(),
            events: BinaryHeap::new(),
            seq: 0,
            finished: Vec::new(),
            stats: vec![CoreHierStats::default(); n],
            dram_buf: Vec::new(),
            pf_buf: Vec::new(),
            retries: Vec::new(),
            retry_min: Cycle::MAX,
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Index of the last (outermost, off-chip-boundary) level.
    fn last(&self) -> usize {
        self.levels.len() - 1
    }

    /// Which [`ServedBy`] class a hit at `level` reports: the first level
    /// is `L1`, the last is `Llc`, anything between is `L2` (middle
    /// levels share one bucket so [`hermes_cpu::CoreStats`] stays
    /// depth-independent).
    fn served_at(&self, level: usize) -> ServedBy {
        if level == 0 {
            ServedBy::L1
        } else if level == self.last() {
            ServedBy::Llc
        } else {
            ServedBy::L2
        }
    }

    /// Per-core hierarchy statistics.
    pub fn core_stats(&self) -> &[CoreHierStats] {
        &self.stats
    }

    /// Per-level aggregate statistics, innermost first, as
    /// `(name, stats)` pairs.
    pub fn level_stats(&self) -> Vec<(String, LevelStats)> {
        self.levels
            .iter()
            .map(|l| (l.name().to_string(), *l.stats()))
            .collect()
    }

    /// Total outstanding misses across every level's MSHR tables
    /// (diagnostics/tests: zero when the hierarchy is quiescent).
    pub fn mshrs_in_flight(&self) -> usize {
        self.levels.iter().map(|l| l.mshr_in_flight_total()).sum()
    }

    /// Per-core predictor confusion matrices.
    pub fn predictor_stats(&self) -> &[PredictorStats] {
        &self.pred_stats
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> &hermes_dram::controller::DramStats {
        self.dram.stats()
    }

    /// Zeroes accumulated statistics (warmup boundary). Microarchitectural
    /// state (caches, predictors, prefetchers) is preserved.
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = CoreHierStats::default();
        }
        for s in &mut self.pred_stats {
            *s = PredictorStats::default();
        }
        for l in &mut self.levels {
            l.reset_stats();
        }
        // Statistics only: in-flight reads must survive the boundary or
        // their waiters (MSHRs, cores) would strand.
        self.dram.reset_stats();
    }

    /// The earliest cycle at which this hierarchy has any work to do —
    /// the next scheduled event, pending retry, or DRAM completion.
    /// `Cycle::MAX` when fully quiescent. Drives idle-cycle fast-forward
    /// in [`crate::System::run`].
    pub fn next_event_at(&self) -> Cycle {
        let mut at = Cycle::MAX;
        if let Some(Reverse(e)) = self.events.peek() {
            at = at.min(e.at);
        }
        at = at.min(self.retry_min);
        if let Some(d) = self.dram.next_completion_at() {
            at = at.min(d);
        }
        at
    }

    fn schedule(&mut self, at: Cycle, ev: Ev) {
        self.seq += 1;
        self.events.push(Reverse(HeapEntry {
            at,
            seq: self.seq,
            ev,
        }));
    }

    fn predict(&mut self, core: usize, ctx: &LoadContext) -> Prediction {
        match &mut self.predictors[core] {
            PredictorImpl::None => Prediction::negative(),
            PredictorImpl::Popet(p) => p.predict(ctx),
            PredictorImpl::Hmp(h) => h.predict(ctx),
            PredictorImpl::Ttp(t) => t.predict(ctx),
            PredictorImpl::Ideal => {
                let present = self.levels.iter().any(|l| l.probe(core, ctx.pline));
                Prediction {
                    go_offchip: !present,
                    meta: hermes::predictor::PredictionMeta::None,
                }
            }
        }
    }

    fn train(&mut self, core: usize, rec: &LoadRec, went_offchip: bool) {
        self.pred_stats[core].record(rec.pred.go_offchip, went_offchip);
        match &mut self.predictors[core] {
            PredictorImpl::Popet(p) => p.train(&rec.ctx, &rec.pred, went_offchip),
            PredictorImpl::Hmp(h) => h.train(&rec.ctx, &rec.pred, went_offchip),
            PredictorImpl::Ttp(t) => t.train(&rec.ctx, &rec.pred, went_offchip),
            PredictorImpl::None | PredictorImpl::Ideal => {}
        }
    }

    fn notify_fill(&mut self, core: usize, line: LineAddr) {
        if let PredictorImpl::Ttp(t) = &mut self.predictors[core] {
            t.on_cache_fill(line);
        }
    }

    fn notify_llc_eviction(&mut self, line: LineAddr) {
        for p in &mut self.predictors {
            if let PredictorImpl::Ttp(t) = p {
                t.on_llc_eviction(line);
            }
        }
    }

    /// Completes a demand load: trains the predictor and queues the
    /// core callback.
    fn finish_demand(&mut self, core: usize, token: u64, served: ServedBy, now: Cycle) {
        if let Some(rec) = self.loads.remove(&key(core, token)) {
            let offchip = served.is_offchip();
            if self.cfg.hermes.enabled() {
                self.train(core, &rec, offchip);
            }
            if offchip {
                let s = &mut self.stats[core];
                s.offchip_loads += 1;
                s.offchip_latency_sum += now.saturating_sub(rec.issue);
                s.offchip_onchip_portion_sum += self.onchip_latency as u64;
            }
        }
        self.finished.push((core, token, served));
    }

    /// First-level access for a load or store at `now` (also re-entered
    /// from the retry heap).
    fn access_first(
        &mut self,
        core: usize,
        line: LineAddr,
        token: Option<u64>,
        is_store: bool,
        pc: u64,
        now: Cycle,
    ) {
        self.stats[core].l1_accesses += 1;
        let res = self.levels[0].access(core, line, pc_sig(pc));
        if res.hit {
            if is_store {
                self.levels[0].mark_dirty(core, line);
            }
            if let Some(tok) = token {
                let at = now + self.levels[0].latency() as Cycle;
                self.schedule(
                    at,
                    Ev::CompleteLoad {
                        core,
                        token: tok,
                        served: ServedBy::L1,
                    },
                );
            }
            return;
        }
        match self.levels[0].mshr_allocate(core, line, Waiter::Request { token, is_store }, false) {
            Ok(true) => {
                let at = now + (self.levels[0].latency() + self.levels[1].latency()) as Cycle;
                self.schedule(
                    at,
                    Ev::Lookup {
                        level: 1,
                        core,
                        line,
                        pc,
                        retried: false,
                    },
                );
            }
            Ok(false) => {}
            Err(_) => {
                // Structural stall: retry the whole first-level access
                // after the retry delay (the repeated tag lookup is
                // charged to the power model).
                let at = now + self.cfg.mshr_retry as Cycle;
                self.retry_min = self.retry_min.min(at);
                self.retries.push(Retry {
                    at,
                    core,
                    line,
                    token,
                    is_store,
                    pc,
                });
            }
        }
    }

    /// Demand lookup at an intermediate level (`0 < level < last`).
    fn lookup_mid(
        &mut self,
        level: usize,
        core: usize,
        line: LineAddr,
        pc: u64,
        retried: bool,
        now: Cycle,
    ) {
        if !retried {
            self.stats[core].l2_accesses += 1;
        }
        let res = self.levels[level].access(core, line, pc_sig(pc));
        if res.hit {
            self.descend(level, core, line, self.served_at(level), now);
            return;
        }
        match self.levels[level].mshr_allocate(core, line, Waiter::Merge { core }, false) {
            Ok(true) => {
                let at = now + self.levels[level + 1].latency() as Cycle;
                self.schedule(
                    at,
                    Ev::Lookup {
                        level: level + 1,
                        core,
                        line,
                        pc,
                        retried: false,
                    },
                );
            }
            Ok(false) => {}
            Err(_) => {
                let at = now + self.cfg.mshr_retry as Cycle;
                self.schedule(
                    at,
                    Ev::Lookup {
                        level,
                        core,
                        line,
                        pc,
                        retried: true,
                    },
                );
            }
        }
    }

    /// Demand lookup at the last level: prefetcher observation point and
    /// the off-chip boundary.
    fn lookup_last(&mut self, core: usize, line: LineAddr, pc: u64, retried: bool, now: Cycle) {
        let last = self.last();
        let res = self.levels[last].access(core, line, pc_sig(pc));
        if !retried {
            self.stats[core].llc_demand_accesses += 1;
            if res.first_demand_on_prefetch {
                self.stats[core].prefetches_useful += 1;
                self.prefetchers[core].on_prefetch_hit(line);
            }
            // Prefetcher observes every demand access at this level.
            let mut buf = std::mem::take(&mut self.pf_buf);
            buf.clear();
            self.prefetchers[core].on_access(
                &AccessCtx {
                    pc,
                    line,
                    hit: res.hit,
                },
                &mut buf,
            );
            buf.truncate(MAX_PF_PER_ACCESS);
            for req in &buf {
                self.issue_prefetch(core, line, req.line, now);
            }
            self.pf_buf = buf;
        }

        if res.hit {
            self.descend(last, core, line, self.served_at(last), now);
            return;
        }
        if !retried {
            self.stats[core].llc_demand_misses += 1;
        }
        let was_prefetch_only = self.levels[last].mshr_is_prefetch_only(core, line);
        match self.levels[last].mshr_allocate(core, line, Waiter::Demand { core, pc }, false) {
            Ok(true) => {
                let _ = self.dram.enqueue_read(line, now, ReqKind::Demand);
            }
            Ok(false) => {
                // Merged into an outstanding miss; if it was a pure
                // prefetch, that prefetch was accurate but late.
                if was_prefetch_only == Some(true) {
                    self.prefetchers[core].on_late_prefetch(line);
                }
            }
            Err(_) => {
                let at = now + self.cfg.mshr_retry as Cycle;
                self.schedule(
                    at,
                    Ev::Lookup {
                        level: last,
                        core,
                        line,
                        pc,
                        retried: true,
                    },
                );
            }
        }
    }

    /// Issues one prefetch candidate, enforcing the same-physical-page
    /// rule (the next virtual page's frame is unknowable to hardware, so
    /// crossing a page boundary fetches unrelated data) and an MSHR
    /// reservation so prefetches cannot starve demand misses.
    fn issue_prefetch(&mut self, core: usize, trigger: LineAddr, line: LineAddr, now: Cycle) {
        let last = self.last();
        if line.page_number() != trigger.page_number() {
            return;
        }
        if self.levels[last].mshr_in_use(core) + PF_MSHR_RESERVE
            >= self.levels[last].mshr_capacity(core)
        {
            return;
        }
        if self.levels[last].probe(core, line) || self.levels[last].mshr_contains(core, line) {
            return;
        }
        if self.levels[last].mshr_allocate(core, line, Waiter::Prefetch, true) == Ok(true) {
            self.stats[core].prefetches_issued += 1;
            // May merge into an in-flight read (e.g. a Hermes request to
            // the same line) at the controller — no duplicate traffic,
            // but the prefetcher keeps its feedback loop.
            let _ = self.dram.enqueue_read(line, now, ReqKind::Prefetch);
        }
    }

    /// Fills the last level, handling eviction side effects (writeback to
    /// DRAM, prefetcher and TTP notifications).
    fn fill_last(&mut self, line: LineAddr, dirty: bool, prefetched: bool, sig: u16, now: Cycle) {
        let last = self.last();
        if let Some(ev) = self.levels[last].fill(0, line, dirty, prefetched, sig) {
            if ev.was_unused_prefetch {
                for p in &mut self.prefetchers {
                    p.on_unused_eviction(ev.line);
                }
            }
            self.notify_llc_eviction(ev.line);
            if ev.dirty {
                self.dram.enqueue_write(ev.line, now);
            }
        }
        // TTP is a core-side structure (§7.2): it observes fills returning
        // to the core, not prefetch fills happening inside the LLC. This
        // blindness to prefetched lines is precisely what destroys its
        // accuracy under a high-coverage prefetcher (paper Fig. 9).
        if !prefetched {
            for c in 0..self.cfg.cores {
                self.notify_fill(c, line);
            }
        }
    }

    /// Fills an intermediate level on `core`'s path, propagating dirty
    /// evictions outward.
    fn fill_mid(&mut self, level: usize, core: usize, line: LineAddr, dirty: bool, now: Cycle) {
        if let Some(ev) = self.levels[level].fill(core, line, dirty, false, 0) {
            if ev.dirty {
                self.writeback(level + 1, core, ev.line, now);
            }
        }
        self.notify_fill(core, line);
    }

    /// Delivers a dirty victim evicted from `level - 1` to `level`: a
    /// resident line is marked dirty in place, otherwise the line is
    /// (re)filled dirty, recursing outward on further evictions.
    fn writeback(&mut self, level: usize, core: usize, line: LineAddr, now: Cycle) {
        if self.levels[level].mark_dirty(core, line) {
            return;
        }
        if level == self.last() {
            self.fill_last(line, true, false, 0, now);
        } else {
            self.fill_mid(level, core, line, true, now);
        }
    }

    /// Data hit (or arrived) at `from`: walk `core`'s request chain
    /// inward, filling each inner level and resuming every requester
    /// merged at its MSHRs.
    fn descend(&mut self, from: usize, core: usize, line: LineAddr, served: ServedBy, now: Cycle) {
        debug_assert!(from >= 1, "first-level hits complete synchronously");
        self.fill_and_resume(from - 1, core, line, served, now);
    }

    /// Fills `level` on `core`'s path and completes its MSHR entry,
    /// recursing towards the cores for every merged waiter (at a shared
    /// level the entry may carry chains from several cores). At level 0
    /// this finishes the waiting loads/stores.
    fn fill_and_resume(
        &mut self,
        level: usize,
        core: usize,
        line: LineAddr,
        served: ServedBy,
        now: Cycle,
    ) {
        if level == 0 {
            self.complete_first_path(core, line, served, now);
            return;
        }
        self.fill_mid(level, core, line, false, now);
        let completed = self.levels[level].mshr_complete(core, line);
        debug_assert!(
            completed.is_some(),
            "level {level} path completion without MSHR entry"
        );
        if let Some((waiters, _)) = completed {
            for w in waiters {
                match w {
                    Waiter::Merge { core: c } => {
                        self.fill_and_resume(level - 1, c, line, served, now)
                    }
                    _ => debug_assert!(false, "non-merge waiter at intermediate level"),
                }
            }
        }
    }

    /// Fills `core`'s first level and completes all waiters registered in
    /// its MSHR for `line`.
    fn complete_first_path(&mut self, core: usize, line: LineAddr, served: ServedBy, now: Cycle) {
        let Some((waiters, _)) = self.levels[0].mshr_complete(core, line) else {
            return;
        };
        let any_store = waiters
            .iter()
            .any(|w| matches!(w, Waiter::Request { is_store: true, .. }));
        if let Some(ev) = self.levels[0].fill(core, line, any_store, false, 0) {
            if ev.dirty {
                self.writeback(1, core, ev.line, now);
            }
        }
        self.notify_fill(core, line);
        for w in waiters {
            if let Waiter::Request {
                token: Some(tok), ..
            } = w
            {
                self.finish_demand(core, tok, served, now);
            }
        }
    }

    fn handle_dram_completion(&mut self, c: Completion, now: Cycle) {
        let last = self.last();
        if let Some((waiters, prefetch_only)) = self.levels[last].mshr_complete(0, c.line) {
            let sig = waiters
                .iter()
                .find_map(|w| match w {
                    Waiter::Demand { pc, .. } => Some(pc_sig(*pc)),
                    _ => None,
                })
                .unwrap_or(0);
            self.fill_last(c.line, false, prefetch_only, sig, now);
            for w in waiters {
                if let Waiter::Demand { core, .. } = w {
                    self.fill_and_resume(last - 1, core, c.line, ServedBy::Dram, now);
                }
            }
        } else {
            // A Hermes read no demand ever merged into: dropped without
            // filling any cache (§6.2.2).
            debug_assert!(
                c.hermes_initiated && !c.demanded,
                "unmatched DRAM completion that is not a dropped Hermes read"
            );
        }
    }

    fn handle_event(&mut self, ev: Ev, now: Cycle) {
        match ev {
            Ev::Lookup {
                level,
                core,
                line,
                pc,
                retried,
            } => {
                if level == self.last() {
                    self.lookup_last(core, line, pc, retried, now);
                } else {
                    self.lookup_mid(level, core, line, pc, retried, now);
                }
            }
            Ev::HermesIssue { core, line } => {
                self.stats[core].hermes_requests += 1;
                let _ = self.dram.enqueue_read(line, now, ReqKind::Hermes);
            }
            Ev::CompleteLoad {
                core,
                token,
                served,
            } => {
                self.finish_demand(core, token, served, now);
            }
        }
    }

    /// Advances the hierarchy to `now`: processes due retries, events,
    /// and DRAM completions. Finished loads accumulate in the internal
    /// buffer drained by [`Hierarchy::drain_finished`].
    pub fn tick(&mut self, now: Cycle) {
        // Retries first (they were scheduled in a side queue). The scan
        // is gated on the cached minimum: a tick with nothing due costs
        // one comparison. When due entries exist the sweep is the exact
        // historical swap-remove scan (order preserved bit-for-bit);
        // entries re-parked mid-scan land behind the cursor with a
        // future due time and are skipped.
        if now >= self.retry_min {
            let mut i = 0;
            while i < self.retries.len() {
                if self.retries[i].at <= now {
                    let r = self.retries.swap_remove(i);
                    self.access_first(r.core, r.line, r.token, r.is_store, r.pc, now);
                } else {
                    i += 1;
                }
            }
            self.retry_min = self
                .retries
                .iter()
                .map(|r| r.at)
                .min()
                .unwrap_or(Cycle::MAX);
        }
        while let Some(Reverse(entry)) = self.events.peek() {
            if entry.at > now {
                break;
            }
            let Reverse(entry) = self.events.pop().expect("peeked");
            self.handle_event(entry.ev, now);
        }
        let mut buf = std::mem::take(&mut self.dram_buf);
        self.dram.pop_completions(now, &mut buf);
        for c in buf.drain(..) {
            self.handle_dram_completion(c, now);
        }
        self.dram_buf = buf;
    }

    /// Drains (core, token, served) completions for delivery to cores.
    pub fn drain_finished(&mut self, out: &mut Vec<(usize, u64, ServedBy)>) {
        out.clear();
        out.append(&mut self.finished);
    }

    /// Oracle visibility for tests: whether a line is present at any level
    /// for `core`.
    pub fn present_anywhere(&self, core: usize, line: LineAddr) -> bool {
        self.levels.iter().any(|l| l.probe(core, line))
    }

    /// Prefetcher storage in bits (Table 6 rows).
    pub fn prefetcher_storage_bits(&self) -> usize {
        self.prefetchers
            .first()
            .map(|p| p.storage_bits())
            .unwrap_or(0)
    }
}

impl MemoryPort for Hierarchy {
    fn issue_load(&mut self, req: LoadIssue, now: Cycle) {
        let paddr = translate(req.core, req.vaddr);
        let pline = paddr.line();
        let ctx = LoadContext {
            pc: req.pc,
            vaddr: req.vaddr,
            pline,
        };
        if self.cfg.hermes.enabled() {
            let pred = self.predict(req.core, &ctx);
            if pred.go_offchip && !self.cfg.hermes.passive {
                let at = now + self.cfg.hermes.issue_latency as Cycle;
                self.schedule(
                    at,
                    Ev::HermesIssue {
                        core: req.core,
                        line: pline,
                    },
                );
            }
            self.loads.insert(
                key(req.core, req.token),
                LoadRec {
                    ctx,
                    pred,
                    issue: now,
                },
            );
        } else {
            self.loads.insert(
                key(req.core, req.token),
                LoadRec {
                    ctx,
                    pred: Prediction::negative(),
                    issue: now,
                },
            );
        }
        self.access_first(req.core, pline, Some(req.token), false, req.pc, now);
    }

    fn issue_store(&mut self, req: StoreIssue, now: Cycle) {
        let pline = translate(req.core, req.vaddr).line();
        self.access_first(req.core, pline, None, true, req.pc, now);
    }
}
