//! The memory-hierarchy engine: a configurable pipeline of cache levels,
//! prefetchers, off-chip predictors, the Hermes datapath, and DRAM —
//! implementing the core-facing [`MemoryPort`].
//!
//! ## Topology
//!
//! The hierarchy is a `Vec<CacheLevel>` built from
//! [`SystemConfig::level_configs`] (innermost level first). The default
//! is the paper's three-level stack — private L1D, private L2, shared
//! LLC — but any depth ≥ 2 works, with each level private per core or
//! shared by all cores ([`hermes_cache::LevelScope`]). Three level roles
//! fall out of the position in the stack:
//!
//! * **first level** (always private) — the level the core pipeline
//!   talks to: it tracks load tokens and store write-allocates in its
//!   MSHRs and is where full-MSHR accesses park in the retry queue;
//! * **intermediate levels** — pure lookup/merge stages;
//! * **last level** (always shared) — hosts the data prefetchers, feeds
//!   the memory controller, and defines the *off-chip boundary*: a load
//!   missing here is the positive class Hermes predicts
//!   ([`hermes_cpu::ServedBy::Dram`]), regardless of depth.
//!
//! Hermes prediction fires when the load issues at the first level and
//! trains when the load resolves, exactly as in the fixed pipeline.
//!
//! ## Load path timing
//!
//! Latencies follow Table 4's load-to-use numbers, generalised per level:
//! a first-level hit completes at issue+`lat₀`; a lookup at level *i*+1
//! is scheduled `lat_{i+1}` cycles after the miss at level *i* (so the
//! default's L2 hit lands at issue+15 and LLC hit at issue+55); a
//! last-level miss enters the memory controller's read queue with the
//! full on-chip latency already paid and completes when DRAM delivers. A
//! Hermes request for a predicted-off-chip load enters the read queue at
//! issue+6 (Hermes-O) or issue+18 (Hermes-P) instead — the regular miss
//! later *merges* with it at the controller, which is precisely how
//! Hermes hides the on-chip hierarchy latency (§6.2.1). A completed
//! Hermes read that no demand merged into is dropped without filling any
//! cache (§6.2.2), keeping the hierarchy coherent on a misprediction.
//!
//! ## Fills and evictions
//!
//! A fill returning from DRAM (or from a hit at an outer level) walks the
//! stack inward, filling every level on the requesting core's path and
//! completing each level's MSHR entry — resuming merged requesters from
//! other cores where a shared level joined their paths. Dirty victims
//! propagate outward level by level and become DRAM writebacks when the
//! last level evicts them. Prefetches fill only the last level (they are
//! last-level prefetchers, Table 4). TTP observes every fill and every
//! last-level eviction; the active prefetcher observes last-level demand
//! accesses and receives usefulness feedback.
//!
//! ## Coherence
//!
//! With [`SystemConfig::coherence`] unset the hierarchy is coherence-free
//! — correct only while cores touch disjoint physical lines, which every
//! historical workload guarantees — and bit-identical to the
//! pre-coherence simulator. With a [`hermes_cache::CoherenceConfig`], a
//! directory-style MESI protocol runs at the shared last level:
//!
//! * the last level's tags carry an **inclusive sharer directory** (a
//!   per-line core bitmap), updated as fills travel toward cores;
//! * a **store hit** on a line with remote sharers sends a
//!   write-permission upgrade through the event queue (the
//!   `inv_latency` round trip) and invalidates the remote copies; a
//!   **store miss** piggybacks its invalidations on the fetch (RFO);
//! * a **read** of a line a remote core holds Modified pays a dirty
//!   intervention: the owner is downgraded, the shared level absorbs the
//!   dirty data, and the requester waits the same round-trip latency;
//! * a shared-level **eviction back-invalidates** every private copy so
//!   the directory stays inclusive, and a fill that races such a
//!   back-invalidation delivers data without caching it.
//!
//! MESI states are derived, not stored: Modified = dirty private copy,
//! Exclusive/Shared = clean copy with/without the directory listing other
//! cores. Directory bits may over-approximate after silent clean private
//! evictions (resolved by spurious invalidations), never
//! under-approximate.
//!
//! ## Address translation
//!
//! With `SystemConfig::vm` unset, translation is the historical free
//! stateless hash ([`crate::translate`]) folded into the L1 access —
//! bit-identical to the pre-vm simulator. With a
//! [`hermes_vm::VmConfig`], translation timing is real:
//!
//! * a **dTLB hit** is accessed in parallel with the L1 (§3.1 of the
//!   paper) and costs nothing extra — the classic path;
//! * a **dTLB miss, STLB hit** defers the access by the STLB latency and
//!   refills the dTLB;
//! * an **STLB miss** starts (or joins) a hardware page walk: the walker
//!   issues the radix levels' PTE reads *through this cache hierarchy* —
//!   they occupy MSHRs, fill and pollute the caches, park in the retry
//!   queue when tables are full, and can themselves go off-chip — with a
//!   per-core page-walk cache short-circuiting the levels it has seen
//!   before. Same-page requests merge into the walk in flight.
//!
//! The deferred load's POPET prediction still happens at issue, off the
//! virtual address (§6.1.3); what waits for the PFN is the *direct DRAM
//! request*: a predicted-off-chip load's Hermes read issues at
//! `max(issue + hermes latency, walk completion)`, reproducing the
//! paper's observation that Hermes-O cannot fire before the physical
//! address is known. Off-chip load latency keeps counting from original
//! issue, so walk time shows up exactly where a real core would feel it.
//!
//! ## Retry queue
//!
//! First-level accesses rejected by a full MSHR table park in a retry
//! queue and re-execute the full access (tag lookup included, which is
//! deliberately re-charged to the power model) after `mshr_retry`
//! cycles. The queue keeps the historical `Vec` + swap-remove scan —
//! whose exact (path-dependent) processing order the regression goldens
//! are bit-for-bit sensitive to, ruling out a reordering container like
//! a min-heap — but caches the minimum due time so the common
//! nothing-due tick is a single comparison instead of an O(n) sweep of
//! every pending entry. The cached minimum also feeds
//! [`Hierarchy::next_event_at`] for idle-cycle fast-forward.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use hermes::{
    CohEventTable, CohHints, Hmp, LoadContext, OffChipPredictor, Popet, Prediction, PredictorKind,
    PredictorStats, SpecReadFilter, Ttp,
};
use hermes_cache::{CacheLevel, LevelStats, Mesi};
use hermes_cpu::{LoadIssue, MemoryPort, ServedBy, StoreIssue};
use hermes_dram::{Completion, MemoryController, ReqKind};
use hermes_prefetch::{self as pf, AccessCtx, PrefetchReq, Prefetcher};
use hermes_probe::{IntervalInput, LatClass, Probe, ProbeReport};
use hermes_types::{CoreId, Cycle, LineAddr, PhysAddr, VirtAddr};
use hermes_vm::{PageMap, Tlb, VmConfig, WalkCache};

use crate::config::SystemConfig;
use crate::translate::translate;

/// Maximum prefetch candidates accepted per triggering access.
const MAX_PF_PER_ACCESS: usize = 32;

/// Last-level MSHR registers held back from prefetches so demands never
/// starve.
const PF_MSHR_RESERVE: usize = 8;

/// An MSHR waiter payload; which variants appear at a level follows from
/// the level's role (see module docs).
#[derive(Debug, Clone, Copy)]
enum Waiter {
    /// First level: a core access awaiting data. `token` is `None` for
    /// stores (write-allocate fetches); `pc` re-issues the access when a
    /// coherence upgrade loses its race.
    Request {
        token: Option<u64>,
        is_store: bool,
        pc: u64,
    },
    /// Intermediate level: a merged request chain from `core`, resumed
    /// towards the core when the fill arrives.
    Merge { core: usize },
    /// Last level: a demand miss from `core` (the `pc` feeds SHiP's fill
    /// signature).
    Demand { core: usize, pc: u64 },
    /// Last level: a prefetch-only requester.
    Prefetch,
    /// First level: a page-table-walker read; completion advances the
    /// walk to its next radix level (or finishes the translation).
    Walk { walk: u64 },
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Demand lookup reaching `level` (≥ 1; the first level is accessed
    /// synchronously at issue).
    Lookup {
        level: usize,
        core: usize,
        line: LineAddr,
        pc: u64,
        retried: bool,
        /// Page-table-walker lookup: excluded from demand statistics and
        /// invisible to the prefetchers.
        walk: bool,
    },
    HermesIssue {
        core: usize,
        line: LineAddr,
    },
    CompleteLoad {
        core: usize,
        token: u64,
        served: ServedBy,
    },
    /// The walker's previous action for `walk` resolved: issue the next
    /// PTE access, or complete the translation when none remain.
    WalkStep {
        walk: u64,
    },
    /// Coherence: a store hit on a Shared line finished its directory
    /// round trip — invalidate remote copies and take write permission
    /// (or, if the copy was lost while the request travelled, redo the
    /// store access).
    Upgrade {
        core: usize,
        line: LineAddr,
        pc: u64,
    },
    /// Coherence: a last-level hit whose data had to be forwarded out of
    /// a remote Modified copy (dirty intervention) resumes its descent
    /// toward the requester after the intervention latency.
    CohResume {
        core: usize,
        line: LineAddr,
        served: ServedBy,
    },
}

#[derive(Debug)]
struct HeapEntry {
    at: Cycle,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A first-level access deferred by MSHR exhaustion, waiting in the
/// retry queue.
#[derive(Debug, Clone, Copy)]
struct Retry {
    core: usize,
    line: LineAddr,
    token: Option<u64>,
    is_store: bool,
    pc: u64,
    /// `Some` for a parked page-table-walker access.
    walk: Option<u64>,
    /// First-level [`CacheLevel::change_epoch`] observed when the access
    /// parked. While it still matches at retry time, nothing that could
    /// admit the access has happened, so the re-attempt short-circuits
    /// to its accounting side effects.
    epoch: u64,
}

/// The retry queue in struct-of-arrays layout: due times live in their
/// own dense vector so the per-tick sweep touches 8 bytes per
/// parked-but-not-due entry instead of the whole payload (under MSHR
/// saturation the queue holds thousands of entries and is re-scanned
/// every tick). `push`/`swap_remove` keep the two vectors in lockstep,
/// preserving the exact legacy scan order bit-for-bit.
#[derive(Debug, Default)]
struct RetryQueue {
    at: Vec<Cycle>,
    body: Vec<Retry>,
}

impl RetryQueue {
    #[inline]
    fn len(&self) -> usize {
        self.at.len()
    }

    #[inline]
    fn push(&mut self, at: Cycle, r: Retry) {
        self.at.push(at);
        self.body.push(r);
    }

    #[inline]
    fn at(&self, i: usize) -> Cycle {
        self.at[i]
    }

    #[inline]
    fn swap_remove(&mut self, i: usize) -> Retry {
        self.at.swap_remove(i);
        self.body.swap_remove(i)
    }

    /// Minimum due time across the queue (`Cycle::MAX` when empty).
    fn min_at(&self) -> Cycle {
        self.at.iter().copied().min().unwrap_or(Cycle::MAX)
    }
}

/// What the predictor said about an in-flight load, kept until training.
#[derive(Debug, Clone, Copy)]
struct LoadRec {
    ctx: LoadContext,
    pred: Prediction,
    issue: Cycle,
    /// Whether a speculative Hermes DRAM read was actually launched for
    /// this load (predicted off-chip, not passive, and not suppressed by
    /// the second-level filter) — the denominator of the useful/wasted
    /// speculative-read accounting.
    fired: bool,
}

enum PredictorImpl {
    None,
    Popet(Box<Popet>),
    Hmp(Box<Hmp>),
    Ttp(Box<Ttp>),
    /// Oracle: resolved by peeking the hierarchy at prediction time.
    Ideal,
}

/// Per-core hierarchy statistics.
///
/// The level-indexed counters keep their historical three-level names:
/// `l1_accesses` counts the first level, `l2_accesses` every
/// intermediate level combined, and `llc_demand_*` the last level,
/// whatever the configured depth.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreHierStats {
    /// Demand accesses reaching the last level.
    pub llc_demand_accesses: u64,
    /// Demand accesses missing the last level (the MPKI numerator).
    pub llc_demand_misses: u64,
    /// Hermes requests issued to the memory controller.
    pub hermes_requests: u64,
    /// Prefetches issued to DRAM on behalf of this core.
    pub prefetches_issued: u64,
    /// Prefetched lines this core demanded (useful prefetches).
    pub prefetches_useful: u64,
    /// First-level accesses (power model).
    pub l1_accesses: u64,
    /// Intermediate-level accesses (power model).
    pub l2_accesses: u64,
    /// Sum over off-chip loads of total latency (issue -> data).
    pub offchip_latency_sum: u64,
    /// Sum over off-chip loads of the on-chip portion (issue -> MC).
    pub offchip_onchip_portion_sum: u64,
    /// Off-chip demand loads observed at the hierarchy.
    pub offchip_loads: u64,
    /// dTLB lookups (loads and stores; zero with `vm: None`).
    pub dtlb_accesses: u64,
    /// dTLB misses (each probes the STLB).
    pub dtlb_misses: u64,
    /// STLB misses (each starts or joins a hardware page walk).
    pub stlb_misses: u64,
    /// Hardware page walks completed.
    pub walks_completed: u64,
    /// Sum over completed walks of STLB-miss-to-PFN latency in cycles.
    pub walk_cycles_sum: u64,
    /// Cache accesses issued by the page-table walker (retries included).
    pub walk_mem_accesses: u64,
    /// Radix levels skipped thanks to the page-walk cache.
    pub pwc_levels_skipped: u64,
    /// Coherence: write-permission upgrades this core's stores paid a
    /// directory round trip for (store hit on a Shared line). Zero with
    /// `coherence: None`.
    pub coh_upgrades: u64,
    /// Coherence: remote private copies actually invalidated on behalf
    /// of this core's stores (upgrades and store-miss RFOs).
    pub coh_invalidations: u64,
    /// Coherence: dirty interventions serving this core — a remote
    /// Modified copy forwarded through the shared level to satisfy this
    /// core's load or store.
    pub coh_dirty_forwards: u64,
    /// Coherence: this core's private copies killed by inclusive-
    /// directory back-invalidation (the shared level evicted the line).
    pub coh_back_invalidations: u64,
    /// Hermes speculative DRAM reads that paid off: the load was a
    /// genuine DRAM fill, so the early read hid (part of) the off-chip
    /// latency.
    pub spec_reads_useful: u64,
    /// Hermes speculative DRAM reads wasted: the load resolved on-chip —
    /// a mispredicted cache hit, a dirty intervention out of a remote
    /// Modified copy, or a fill that raced a remote RFO — so the DRAM
    /// read burned bandwidth for nothing.
    pub spec_reads_wasted: u64,
}

/// Parameters of one lookup travelling the stack ([`Ev::Lookup`] minus
/// the level).
#[derive(Debug, Clone, Copy)]
struct LookupCtx {
    core: usize,
    line: LineAddr,
    pc: u64,
    retried: bool,
    walk: bool,
}

/// An access deferred until its page translation resolves.
#[derive(Debug, Clone, Copy)]
enum TransWaiter {
    Load {
        token: u64,
        pc: u64,
        pline: LineAddr,
        /// Earliest cycle the Hermes speculative read may enter the
        /// memory controller (`issue + hermes issue latency`), when the
        /// load was predicted off-chip. The actual issue is
        /// `max(this, walk completion)`.
        hermes_min: Option<Cycle>,
    },
    Store {
        pc: u64,
        pline: LineAddr,
    },
}

/// One in-flight translation: a hardware page walk, or the short STLB →
/// dTLB refill delay modelled through the same machinery.
#[derive(Debug)]
struct Walk {
    core: usize,
    /// dTLB key of the page under translation (the `by_page` merge key).
    dtlb_key: u64,
    /// STLB key (differs from the dTLB key when the STLB is shared).
    stlb_key: u64,
    /// TLB index of the page.
    page_number: u64,
    /// Remaining PTE lines, root → leaf; empty for an STLB refill.
    steps: VecDeque<LineAddr>,
    /// Page-walk-cache keys installed on completion.
    pwc_fill: Vec<u64>,
    /// Walk start, for latency accounting; `None` for STLB refills
    /// (which are not page walks and stay out of the walk statistics).
    started: Option<Cycle>,
    /// Accesses waiting for the PFN.
    waiters: Vec<TransWaiter>,
}

/// How a translation request routes the requesting access.
enum TransRoute {
    /// Mapping known now (dTLB hit): proceed exactly like the classic
    /// free-translation path.
    Ready,
    /// Deferred on an in-flight walk/refill: attach a [`TransWaiter`].
    Defer(u64),
}

/// The translation subsystem's state: TLBs, page-walk caches, the page
/// map, and every walk in flight.
struct VmFrontend {
    cfg: VmConfig,
    map: PageMap,
    /// Per-core L1 dTLBs.
    dtlbs: Vec<Tlb>,
    /// STLB instances: one per core, or a single scaled shared one.
    stlbs: Vec<Tlb>,
    /// Per-core page-walk caches.
    pwcs: Vec<WalkCache>,
    walks: HashMap<u64, Walk>,
    /// `(core, dTLB key)` → in-flight walk, for same-page merging.
    by_page: HashMap<(usize, u64), u64>,
    next_walk: u64,
}

impl VmFrontend {
    fn new(cfg: &VmConfig, cores: usize) -> Self {
        let stlb_inst = cfg.stlb_instantiated(cores);
        let stlb_count = if cfg.stlb_shared { 1 } else { cores };
        Self {
            map: PageMap::new(cfg.huge_page_pm),
            dtlbs: (0..cores).map(|_| Tlb::new(&cfg.dtlb)).collect(),
            stlbs: (0..stlb_count).map(|_| Tlb::new(&stlb_inst)).collect(),
            pwcs: (0..cores)
                .map(|_| WalkCache::new(cfg.pwc_entries))
                .collect(),
            walks: HashMap::new(),
            by_page: HashMap::new(),
            next_walk: 0,
            cfg: cfg.clone(),
        }
    }

    fn stlb_slot(&self, core: usize) -> usize {
        if self.cfg.stlb_shared {
            0
        } else {
            core
        }
    }
}

/// See [module docs](self).
pub struct Hierarchy {
    cfg: SystemConfig,
    /// The cache stack, innermost first; `len() >= 2`, first private,
    /// last shared (enforced by [`SystemConfig::validate`]).
    levels: Vec<CacheLevel<Waiter>>,
    /// Cached [`SystemConfig::hierarchy_latency`] (hot in
    /// `finish_demand`).
    onchip_latency: u32,
    dram: MemoryController,
    prefetchers: Vec<Box<dyn Prefetcher>>,
    predictors: Vec<PredictorImpl>,
    pred_stats: Vec<PredictorStats>,
    loads: HashMap<u64, LoadRec>,
    events: BinaryHeap<Reverse<HeapEntry>>,
    seq: u64,
    finished: Vec<(usize, u64, ServedBy)>,
    stats: Vec<CoreHierStats>,
    dram_buf: Vec<Completion>,
    pf_buf: Vec<PrefetchReq>,
    /// Deferred first-level accesses (exact legacy scan order — see
    /// module docs).
    retries: RetryQueue,
    /// Cached `min(retries[..].at)` (`Cycle::MAX` when empty): the O(1)
    /// nothing-due test for `tick` and the retry term of
    /// [`Hierarchy::next_event_at`].
    retry_min: Cycle,
    /// Write-permission upgrades in flight, keyed by (core, line): a
    /// second store to the same line while one travels is subsumed by it
    /// instead of spawning a duplicate directory transaction.
    pending_upgrades: std::collections::HashSet<(usize, LineAddr)>,
    /// Per-core second-level speculative-read filters; consulted only
    /// when `hermes.filter` is on, trained whenever it is.
    filters: Vec<SpecReadFilter>,
    /// Per-core recent-coherence-event tables feeding [`CohHints`];
    /// written on every coherence invalidation, read only when the
    /// coherence-aware knobs are on.
    coh_tables: Vec<CohEventTable>,
    /// Translation subsystem; `None` = historical free translation.
    vm: Option<VmFrontend>,
    /// Observability probe; `None` (the default) skips every hook with
    /// one discriminant test. Boxed so the common probe-free hierarchy
    /// doesn't carry the probe's maps inline.
    probe: Option<Box<Probe>>,
}

fn key(core: usize, token: u64) -> u64 {
    // Tokens are per-core sequence numbers; 48 bits last ~2.8e14
    // instructions per core, far beyond any run. The assert guards the
    // packing against silently aliasing two in-flight loads if that
    // assumption ever breaks.
    debug_assert!(
        token < 1 << 48,
        "load token {token:#x} overflows key packing"
    );
    debug_assert!(core < 1 << 16, "core id {core} overflows key packing");
    ((core as u64) << 48) | token
}

fn pc_sig(pc: u64) -> u16 {
    (hermes_types::mix64(pc) & 0x3FFF) as u16
}

/// Iterates the set bit positions of a sharer bitmap.
fn sharer_bits(mut mask: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(i)
        }
    })
}

impl Hierarchy {
    /// Builds the hierarchy for `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate();
        let n = cfg.cores;
        let predictors = (0..n)
            .map(|_| match cfg.hermes.predictor {
                PredictorKind::None => PredictorImpl::None,
                PredictorKind::Popet => {
                    let pcfg = if cfg.hermes.coh_features {
                        cfg.popet.clone().with_coh_features()
                    } else {
                        cfg.popet.clone()
                    };
                    PredictorImpl::Popet(Box::new(Popet::new(pcfg)))
                }
                PredictorKind::Hmp => PredictorImpl::Hmp(Box::new(Hmp::new())),
                PredictorKind::Ttp => PredictorImpl::Ttp(Box::default()),
                PredictorKind::Ideal => PredictorImpl::Ideal,
            })
            .collect();
        let levels = cfg
            .level_configs()
            .into_iter()
            .map(|lc| CacheLevel::new(lc, n))
            .collect();
        Self {
            levels,
            onchip_latency: cfg.hierarchy_latency(),
            dram: MemoryController::new(cfg.dram.clone()),
            prefetchers: (0..n).map(|_| pf::build(cfg.prefetcher)).collect(),
            predictors,
            pred_stats: vec![PredictorStats::default(); n],
            loads: HashMap::new(),
            events: BinaryHeap::new(),
            seq: 0,
            finished: Vec::new(),
            stats: vec![CoreHierStats::default(); n],
            dram_buf: Vec::new(),
            pf_buf: Vec::new(),
            retries: RetryQueue::default(),
            retry_min: Cycle::MAX,
            pending_upgrades: std::collections::HashSet::new(),
            filters: (0..n).map(|_| SpecReadFilter::new()).collect(),
            coh_tables: (0..n).map(|_| CohEventTable::new()).collect(),
            vm: cfg.vm.as_ref().map(|v| VmFrontend::new(v, n)),
            probe: cfg.probe.clone().map(|p| Box::new(Probe::new(p))),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Index of the last (outermost, off-chip-boundary) level.
    fn last(&self) -> usize {
        self.levels.len() - 1
    }

    /// Which [`ServedBy`] class a hit at `level` reports: the first level
    /// is `L1`, the last is `Llc`, anything between is `L2` (middle
    /// levels share one bucket so [`hermes_cpu::CoreStats`] stays
    /// depth-independent).
    fn served_at(&self, level: usize) -> ServedBy {
        if level == 0 {
            ServedBy::L1
        } else if level == self.last() {
            ServedBy::Llc
        } else {
            ServedBy::L2
        }
    }

    /// Per-core hierarchy statistics.
    pub fn core_stats(&self) -> &[CoreHierStats] {
        &self.stats
    }

    /// Per-level aggregate statistics, innermost first, as
    /// `(name, stats)` pairs.
    pub fn level_stats(&self) -> Vec<(String, LevelStats)> {
        self.levels
            .iter()
            .map(|l| (l.name().to_string(), *l.stats()))
            .collect()
    }

    /// Total outstanding misses across every level's MSHR tables
    /// (diagnostics/tests: zero when the hierarchy is quiescent).
    pub fn mshrs_in_flight(&self) -> usize {
        self.levels.iter().map(|l| l.mshr_in_flight_total()).sum()
    }

    /// Per-core predictor confusion matrices.
    pub fn predictor_stats(&self) -> &[PredictorStats] {
        &self.pred_stats
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> &hermes_dram::controller::DramStats {
        self.dram.stats()
    }

    /// The attached probe's configuration (`None` when observability is
    /// off).
    pub fn probe_config(&self) -> Option<&hermes_probe::ProbeConfig> {
        self.probe.as_deref().map(|p| p.config())
    }

    /// Feeds one interval-timeline snapshot to the probe (no-op with the
    /// probe off). Called by [`crate::System::run`] at interval
    /// boundaries with the cumulative measurement counters.
    pub fn probe_snapshot(&mut self, input: IntervalInput) {
        if let Some(p) = &mut self.probe {
            p.snapshot(input);
        }
    }

    /// Clones the probe's accumulated observations out (`None` with the
    /// probe off).
    pub fn probe_report(&self) -> Option<ProbeReport> {
        self.probe.as_deref().map(|p| p.report())
    }

    /// Instantaneous DRAM queue occupancy `(rq busy, rq capacity,
    /// wq busy, wq capacity)` — pure observation for interval snapshots.
    pub fn dram_occupancy(&self, now: Cycle) -> (usize, usize, usize, usize) {
        self.dram.queue_occupancy(now)
    }

    /// Zeroes accumulated statistics (warmup boundary). Microarchitectural
    /// state (caches, predictors, prefetchers) is preserved.
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = CoreHierStats::default();
        }
        for s in &mut self.pred_stats {
            *s = PredictorStats::default();
        }
        for l in &mut self.levels {
            l.reset_stats();
        }
        // Statistics only: in-flight reads must survive the boundary or
        // their waiters (MSHRs, cores) would strand.
        self.dram.reset_stats();
        // Warmup traces and histograms are discarded with the rest of the
        // statistics; loads in flight across the boundary simply go
        // unrecorded (their on_finish finds no trace entry).
        if let Some(p) = &mut self.probe {
            p.reset();
        }
    }

    /// The earliest cycle at which this hierarchy has any work to do —
    /// the next scheduled event, pending retry, or DRAM completion.
    /// `Cycle::MAX` when fully quiescent. Drives idle-cycle fast-forward
    /// in [`crate::System::run`].
    pub fn next_event_at(&self) -> Cycle {
        let mut at = Cycle::MAX;
        if let Some(Reverse(e)) = self.events.peek() {
            at = at.min(e.at);
        }
        at = at.min(self.retry_min);
        if let Some(d) = self.dram.next_completion_at() {
            at = at.min(d);
        }
        at
    }

    fn schedule(&mut self, at: Cycle, ev: Ev) {
        self.seq += 1;
        self.events.push(Reverse(HeapEntry {
            at,
            seq: self.seq,
            ev,
        }));
    }

    fn predict(&mut self, core: usize, ctx: &LoadContext) -> Prediction {
        match &mut self.predictors[core] {
            PredictorImpl::None => Prediction::negative(),
            PredictorImpl::Popet(p) => p.predict(ctx),
            PredictorImpl::Hmp(h) => h.predict(ctx),
            PredictorImpl::Ttp(t) => t.predict(ctx),
            PredictorImpl::Ideal => {
                let present = self.levels.iter().any(|l| l.probe(core, ctx.pline));
                Prediction {
                    go_offchip: !present,
                    meta: hermes::predictor::PredictionMeta::None,
                }
            }
        }
    }

    fn train(&mut self, core: usize, rec: &LoadRec, went_offchip: bool) {
        self.pred_stats[core].record(rec.pred.go_offchip, went_offchip);
        match &mut self.predictors[core] {
            PredictorImpl::Popet(p) => p.train(&rec.ctx, &rec.pred, went_offchip),
            PredictorImpl::Hmp(h) => h.train(&rec.ctx, &rec.pred, went_offchip),
            PredictorImpl::Ttp(t) => t.train(&rec.ctx, &rec.pred, went_offchip),
            PredictorImpl::None | PredictorImpl::Ideal => {}
        }
    }

    fn notify_fill(&mut self, core: usize, line: LineAddr) {
        if let PredictorImpl::Ttp(t) = &mut self.predictors[core] {
            t.on_cache_fill(line);
        }
    }

    fn notify_llc_eviction(&mut self, line: LineAddr) {
        for p in &mut self.predictors {
            if let PredictorImpl::Ttp(t) = p {
                t.on_llc_eviction(line);
            }
        }
    }

    /// Completes a demand load: trains the predictor and queues the
    /// core callback.
    ///
    /// `coh_served` marks a load whose data was produced by the coherence
    /// protocol rather than a DRAM fill: a dirty intervention out of a
    /// remote Modified copy, or a fill that raced a remote RFO and was
    /// serialised behind the new owner. With `hermes.coh_features` on,
    /// the training label becomes three-way-aware — such loads train as
    /// *on-chip* (they are exactly the misses a speculative DRAM read
    /// cannot help), instead of polluting the predictor toward firing on
    /// every coherence miss. With the knob off the historical binary
    /// label is preserved bit-for-bit.
    fn finish_demand(
        &mut self,
        core: usize,
        token: u64,
        served: ServedBy,
        coh_served: bool,
        now: Cycle,
    ) {
        if let Some(rec) = self.loads.remove(&key(core, token)) {
            let offchip = served.is_offchip();
            let dram_fill = offchip && !coh_served;
            if let Some(p) = &mut self.probe {
                let class = match served {
                    ServedBy::L1 => LatClass::L1,
                    ServedBy::L2 => LatClass::L2,
                    ServedBy::Llc => LatClass::Llc,
                    ServedBy::Dram => LatClass::Offchip,
                };
                p.on_finish(
                    core,
                    token,
                    rec.ctx.pline.raw(),
                    class,
                    now.saturating_sub(rec.issue),
                    rec.fired,
                    now,
                );
            }
            if rec.fired {
                if dram_fill {
                    self.stats[core].spec_reads_useful += 1;
                } else {
                    self.stats[core].spec_reads_wasted += 1;
                }
            }
            if self.cfg.hermes.enabled() {
                let label = if self.cfg.hermes.coh_features {
                    dram_fill
                } else {
                    offchip
                };
                self.train(core, &rec, label);
                if self.cfg.hermes.filter && rec.pred.go_offchip && !self.cfg.hermes.passive {
                    // The filter trains on every predicted-off-chip load,
                    // fired or suppressed, so a PC whose loads go back to
                    // genuine DRAM misses reopens its gate.
                    self.filters[core].train(rec.ctx.pc, dram_fill);
                }
            }
            if offchip {
                let s = &mut self.stats[core];
                s.offchip_loads += 1;
                s.offchip_latency_sum += now.saturating_sub(rec.issue);
                s.offchip_onchip_portion_sum += self.onchip_latency as u64;
            }
        }
        self.finished.push((core, token, served));
    }

    /// First-level access for a load or store at `now` (also re-entered
    /// from the retry heap).
    fn access_first(
        &mut self,
        core: usize,
        line: LineAddr,
        token: Option<u64>,
        is_store: bool,
        pc: u64,
        now: Cycle,
    ) {
        self.stats[core].l1_accesses += 1;
        let res = self.levels[0].access(core, line, pc_sig(pc));
        if res.hit {
            if is_store {
                if self.needs_write_permission(core, line) {
                    // Store hit on a Shared line: blind `mark_dirty`
                    // would silently corrupt remote copies. Request
                    // write permission from the directory; the remote
                    // invalidations land after the round-trip latency.
                    self.request_upgrade(core, line, pc, now);
                } else {
                    self.levels[0].mark_dirty(core, line);
                }
            }
            if let Some(tok) = token {
                let at = now + self.levels[0].latency() as Cycle;
                self.schedule(
                    at,
                    Ev::CompleteLoad {
                        core,
                        token: tok,
                        served: ServedBy::L1,
                    },
                );
            }
            return;
        }
        // A retried access reports its first-level miss again — the
        // repeat makes MSHR-full structural stalls visible in the trace.
        if let (Some(p), Some(tok)) = (&mut self.probe, token) {
            p.on_load_event(core, tok, now, "l1_miss");
        }
        match self.levels[0].mshr_allocate(
            core,
            line,
            Waiter::Request {
                token,
                is_store,
                pc,
            },
            false,
        ) {
            Ok(true) => {
                let at = now + (self.levels[0].latency() + self.levels[1].latency()) as Cycle;
                self.schedule(
                    at,
                    Ev::Lookup {
                        level: 1,
                        core,
                        line,
                        pc,
                        retried: false,
                        walk: false,
                    },
                );
            }
            Ok(false) => {}
            Err(_) => {
                // Structural stall: retry the whole first-level access
                // after the retry delay (the repeated tag lookup is
                // charged to the power model).
                let at = now + self.cfg.mshr_retry as Cycle;
                self.retry_min = self.retry_min.min(at);
                self.retries.push(
                    at,
                    Retry {
                        core,
                        line,
                        token,
                        is_store,
                        pc,
                        walk: None,
                        epoch: self.levels[0].change_epoch(core),
                    },
                );
            }
        }
    }

    /// Translation request under the vm subsystem: consults the dTLB,
    /// STLB, and page-walk cache, starting or joining a page walk when
    /// needed. Returns the physical address (the page map is a pure
    /// function, so data placement never depends on timing) and whether
    /// the requester may proceed now or must wait.
    fn vm_translate(&mut self, core: usize, vaddr: VirtAddr, now: Cycle) -> (PhysAddr, TransRoute) {
        let vm = self.vm.as_mut().expect("vm_translate without vm config");
        let stats = &mut self.stats[core];
        let (paddr, huge) = vm.map.translate(core, vaddr);
        let pn = PageMap::page_number(vaddr, huge);
        let dkey = PageMap::tlb_key(None, pn, huge);
        stats.dtlb_accesses += 1;
        if vm.dtlbs[core].lookup(pn, dkey) {
            // Accessed in parallel with the L1 (§3.1): a hit is free.
            return (paddr, TransRoute::Ready);
        }
        stats.dtlb_misses += 1;
        if let Some(&id) = vm.by_page.get(&(core, dkey)) {
            // A translation for this page is already in flight. Only a
            // true walk implies the STLB missed again; merging into an
            // STLB→dTLB refill is another STLB *hit* still paying the
            // refill latency.
            if vm.walks[&id].started.is_some() {
                stats.stlb_misses += 1;
            }
            return (paddr, TransRoute::Defer(id));
        }
        let slot = vm.stlb_slot(core);
        let skey = PageMap::tlb_key(vm.cfg.stlb_shared.then_some(core), pn, huge);
        let mut walk = Walk {
            core,
            dtlb_key: dkey,
            stlb_key: skey,
            page_number: pn,
            steps: VecDeque::new(),
            pwc_fill: Vec::new(),
            started: None,
            waiters: Vec::new(),
        };
        if !vm.stlbs[slot].lookup(pn, skey) {
            stats.stlb_misses += 1;
            // Assemble the radix walk, skipping every level the
            // page-walk cache already resolves.
            let levels = PageMap::walk_levels(huge);
            let mut start = 0;
            for d in (0..levels - 1).rev() {
                if vm.pwcs[core].lookup(PageMap::pwc_key(vaddr, d)) {
                    start = d + 1;
                    break;
                }
            }
            stats.pwc_levels_skipped += start as u64;
            walk.steps = (start..levels)
                .map(|d| vm.map.pte_line(core, vaddr, d))
                .collect();
            walk.pwc_fill = (0..levels - 1)
                .map(|d| PageMap::pwc_key(vaddr, d))
                .collect();
            walk.started = Some(now);
        }
        let id = vm.next_walk;
        vm.next_walk += 1;
        vm.walks.insert(id, walk);
        vm.by_page.insert((core, dkey), id);
        // The STLB answer (hit data or miss detection) arrives after its
        // lookup latency; only then can the refill complete or the first
        // PTE access leave the walker.
        let at = now + vm.cfg.stlb.latency as Cycle;
        self.schedule(at, Ev::WalkStep { walk: id });
        (paddr, TransRoute::Defer(id))
    }

    /// Advances `walk`: issues its next PTE access, or completes the
    /// translation when none remain.
    fn walk_advance(&mut self, walk: u64, now: Cycle) {
        let (core, step) = {
            let vm = self.vm.as_mut().expect("walk without vm config");
            let w = vm.walks.get_mut(&walk).expect("advance of unknown walk");
            (w.core, w.steps.pop_front())
        };
        match step {
            Some(line) => self.walk_access(core, line, walk, now),
            None => self.complete_walk(walk, now),
        }
    }

    /// One PTE read entering the hierarchy at the first level. Mirrors
    /// [`Hierarchy::access_first`] — including MSHR merging and the retry
    /// queue — but resumes the walker instead of a core.
    fn walk_access(&mut self, core: usize, line: LineAddr, walk: u64, now: Cycle) {
        self.stats[core].walk_mem_accesses += 1;
        let res = self.levels[0].access(core, line, 0);
        if res.hit {
            let at = now + self.levels[0].latency() as Cycle;
            self.schedule(at, Ev::WalkStep { walk });
            return;
        }
        match self.levels[0].mshr_allocate(core, line, Waiter::Walk { walk }, false) {
            Ok(true) => {
                let at = now + (self.levels[0].latency() + self.levels[1].latency()) as Cycle;
                self.schedule(
                    at,
                    Ev::Lookup {
                        level: 1,
                        core,
                        line,
                        pc: 0,
                        retried: false,
                        walk: true,
                    },
                );
            }
            Ok(false) => {}
            Err(_) => {
                let at = now + self.cfg.mshr_retry as Cycle;
                self.retry_min = self.retry_min.min(at);
                self.retries.push(
                    at,
                    Retry {
                        core,
                        line,
                        token: None,
                        is_store: false,
                        pc: 0,
                        walk: Some(walk),
                        epoch: self.levels[0].change_epoch(core),
                    },
                );
            }
        }
    }

    /// Finishes a translation: installs the TLB and page-walk-cache
    /// entries and releases every access (and pending Hermes issue) that
    /// waited for the PFN.
    fn complete_walk(&mut self, walk: u64, now: Cycle) {
        let (core, waiters, started) = {
            let vm = self.vm.as_mut().expect("walk without vm config");
            let w = vm.walks.remove(&walk).expect("completion of unknown walk");
            vm.by_page.remove(&(w.core, w.dtlb_key));
            vm.dtlbs[w.core].insert(w.page_number, w.dtlb_key);
            let slot = vm.stlb_slot(w.core);
            vm.stlbs[slot].insert(w.page_number, w.stlb_key);
            for k in &w.pwc_fill {
                vm.pwcs[w.core].insert(*k);
            }
            if let Some(t0) = w.started {
                let s = &mut self.stats[w.core];
                s.walks_completed += 1;
                s.walk_cycles_sum += now - t0;
            }
            (w.core, w.waiters, w.started)
        };
        if let Some(p) = &mut self.probe {
            // True walks only; an STLB-hit refill (started == None) is
            // not a page walk, matching `walks_completed`.
            if let Some(t0) = started {
                p.record_walk_latency(now - t0);
            }
        }
        for wtr in waiters {
            match wtr {
                TransWaiter::Load {
                    token,
                    pc,
                    pline,
                    hermes_min,
                } => {
                    if let Some(p) = &mut self.probe {
                        p.on_load_event(core, token, now, "tlb_walk_done");
                    }
                    if let Some(min) = hermes_min {
                        // The PFN is known: the speculative read may go.
                        self.schedule(min.max(now), Ev::HermesIssue { core, line: pline });
                    }
                    self.access_first(core, pline, Some(token), false, pc, now);
                }
                TransWaiter::Store { pc, pline } => {
                    self.access_first(core, pline, None, true, pc, now);
                }
            }
        }
    }

    /// Demand (or walker) lookup at an intermediate level
    /// (`0 < level < last`).
    fn lookup_mid(&mut self, level: usize, l: LookupCtx, now: Cycle) {
        let LookupCtx {
            core,
            line,
            pc,
            retried,
            walk,
        } = l;
        if !retried && !walk {
            self.stats[core].l2_accesses += 1;
        }
        let res = self.levels[level].access(core, line, pc_sig(pc));
        if res.hit {
            self.descend(level, core, line, self.served_at(level), false, now);
            return;
        }
        if !retried && !walk {
            if let Some(p) = &mut self.probe {
                p.on_core_line_event(core, line.raw(), now, "l2_miss", "");
            }
        }
        match self.levels[level].mshr_allocate(core, line, Waiter::Merge { core }, false) {
            Ok(true) => {
                let at = now + self.levels[level + 1].latency() as Cycle;
                self.schedule(
                    at,
                    Ev::Lookup {
                        level: level + 1,
                        core,
                        line,
                        pc,
                        retried: false,
                        walk,
                    },
                );
            }
            Ok(false) => {}
            Err(_) => {
                let at = now + self.cfg.mshr_retry as Cycle;
                self.schedule(
                    at,
                    Ev::Lookup {
                        level,
                        core,
                        line,
                        pc,
                        retried: true,
                        walk,
                    },
                );
            }
        }
    }

    /// Demand (or walker) lookup at the last level: prefetcher
    /// observation point and the off-chip boundary. Walker lookups stay
    /// out of the demand statistics and are invisible to the prefetchers
    /// (which model load/store streams, not page-table traffic) but
    /// otherwise behave identically — including going off-chip.
    fn lookup_last(&mut self, l: LookupCtx, now: Cycle) {
        let LookupCtx {
            core,
            line,
            pc,
            retried,
            walk,
        } = l;
        let last = self.last();
        let res = self.levels[last].access(core, line, pc_sig(pc));
        if !retried && !walk {
            self.stats[core].llc_demand_accesses += 1;
            if res.first_demand_on_prefetch {
                self.stats[core].prefetches_useful += 1;
                self.prefetchers[core].on_prefetch_hit(line);
            }
            // Prefetcher observes every demand access at this level.
            let mut buf = std::mem::take(&mut self.pf_buf);
            buf.clear();
            self.prefetchers[core].on_access(
                &AccessCtx {
                    pc,
                    line,
                    hit: res.hit,
                },
                &mut buf,
            );
            buf.truncate(MAX_PF_PER_ACCESS);
            for req in &buf {
                self.issue_prefetch(core, line, req.line, now);
            }
            self.pf_buf = buf;
        }

        if res.hit {
            let served = self.served_at(last);
            if let Some(delay) = self.coh_read_intervention(core, line) {
                // The data lives in a remote Modified copy: it is
                // downgraded and forwarded through this level, and the
                // requester's descent resumes after the intervention
                // latency (through the normal event queue).
                self.schedule(now + delay, Ev::CohResume { core, line, served });
            } else {
                self.descend(last, core, line, served, false, now);
            }
            return;
        }
        if !retried && !walk {
            self.stats[core].llc_demand_misses += 1;
            if let Some(p) = &mut self.probe {
                p.on_core_line_event(core, line.raw(), now, "llc_miss", "");
            }
        }
        let was_prefetch_only = self.levels[last].mshr_is_prefetch_only(core, line);
        match self.levels[last].mshr_allocate(core, line, Waiter::Demand { core, pc }, false) {
            Ok(true) => {
                let _ = self.dram.enqueue_read(line, now, ReqKind::Demand);
                if let Some(p) = &mut self.probe {
                    p.on_core_line_event(core, line.raw(), now, "dram_enqueue", "");
                }
            }
            Ok(false) => {
                // Merged into an outstanding miss; if it was a pure
                // prefetch, that prefetch was accurate but late.
                if was_prefetch_only == Some(true) && !walk {
                    self.prefetchers[core].on_late_prefetch(line);
                }
            }
            Err(_) => {
                let at = now + self.cfg.mshr_retry as Cycle;
                self.schedule(
                    at,
                    Ev::Lookup {
                        level: last,
                        core,
                        line,
                        pc,
                        retried: true,
                        walk,
                    },
                );
            }
        }
    }

    /// Issues one prefetch candidate, enforcing the same-physical-page
    /// rule (the next virtual page's frame is unknowable to hardware, so
    /// crossing a page boundary fetches unrelated data) and an MSHR
    /// reservation so prefetches cannot starve demand misses.
    fn issue_prefetch(&mut self, core: usize, trigger: LineAddr, line: LineAddr, now: Cycle) {
        let last = self.last();
        if line.page_number() != trigger.page_number() {
            return;
        }
        // Optional bandwidth guard (off by default): drop the candidate
        // when its channel's read queue is past quarter occupancy — the
        // same headroom rule Hermes applies to speculative reads — so
        // prefetches stop displacing demand fills under contention.
        if self.cfg.pf_bandwidth_guard && !self.spec_read_headroom(line, now) {
            return;
        }
        if self.levels[last].mshr_in_use(core) + PF_MSHR_RESERVE
            >= self.levels[last].mshr_capacity(core)
        {
            return;
        }
        if self.levels[last].probe(core, line) || self.levels[last].mshr_contains(core, line) {
            return;
        }
        if self.levels[last].mshr_allocate(core, line, Waiter::Prefetch, true) == Ok(true) {
            self.stats[core].prefetches_issued += 1;
            // May merge into an in-flight read (e.g. a Hermes request to
            // the same line) at the controller — no duplicate traffic,
            // but the prefetcher keeps its feedback loop.
            let _ = self.dram.enqueue_read(line, now, ReqKind::Prefetch);
        }
    }

    /// Fills the last level, handling eviction side effects (writeback to
    /// DRAM, inclusive-directory back-invalidation, prefetcher and TTP
    /// notifications). `writeback` marks a fill whose data came *up* from
    /// a private level's dirty victim, not down toward a core.
    fn fill_last(
        &mut self,
        line: LineAddr,
        dirty: bool,
        prefetched: bool,
        sig: u16,
        now: Cycle,
        writeback: bool,
    ) {
        let last = self.last();
        if let Some(ev) = self.levels[last].fill(0, line, dirty, prefetched, sig) {
            let mut ev_dirty = ev.dirty;
            if ev.sharers != 0 {
                // Inclusive directory: the shared level is dropping the
                // line, so every private copy must die with it; a
                // Modified private copy merges into this writeback.
                for c in sharer_bits(ev.sharers) {
                    let mut held = false;
                    for lvl in 0..last {
                        if let Some(d) = self.levels[lvl].invalidate(c, ev.line) {
                            held = true;
                            ev_dirty |= d;
                        }
                    }
                    if held {
                        self.stats[c].coh_back_invalidations += 1;
                        // The line goes to DRAM with the shared-level
                        // eviction — predicting off-chip for it stays
                        // correct — but the page is contended.
                        self.coh_tables[c].record_page_inval(ev.line);
                    }
                }
            }
            if ev.was_unused_prefetch {
                for p in &mut self.prefetchers {
                    p.on_unused_eviction(ev.line);
                }
            }
            self.notify_llc_eviction(ev.line);
            if ev_dirty {
                self.dram.enqueue_write(ev.line, now);
            }
        }
        // TTP is a core-side structure (§7.2): it observes fills returning
        // to the core, not prefetch fills happening inside the LLC (this
        // blindness to prefetched lines is precisely what destroys its
        // accuracy under a high-coverage prefetcher, paper Fig. 9) — and
        // not dirty victims written back *into* the LLC either, which
        // never pass the core on their way out.
        if !prefetched && !writeback {
            for c in 0..self.cfg.cores {
                self.notify_fill(c, line);
            }
        }
    }

    /// Fills an intermediate level on `core`'s path, propagating dirty
    /// evictions outward.
    fn fill_mid(&mut self, level: usize, core: usize, line: LineAddr, dirty: bool, now: Cycle) {
        if let Some(ev) = self.levels[level].fill(core, line, dirty, false, 0) {
            if ev.dirty {
                self.writeback(level + 1, core, ev.line, now);
            }
        }
        self.notify_fill(core, line);
    }

    /// Delivers a dirty victim evicted from `level - 1` to `level`: a
    /// resident line is marked dirty in place, otherwise the line is
    /// (re)filled dirty, recursing outward on further evictions.
    fn writeback(&mut self, level: usize, core: usize, line: LineAddr, now: Cycle) {
        if self.levels[level].mark_dirty(core, line) {
            return;
        }
        if level == self.last() {
            self.fill_last(line, true, false, 0, now, true);
        } else {
            self.fill_mid(level, core, line, true, now);
        }
    }

    /// Whether the coherence protocol is active: configured *and* more
    /// than one core exists. On a single core every line is trivially
    /// exclusive, so the protocol is vacuous — skipping it keeps
    /// single-core `coherence: Some` cycle-exact with `None` (no
    /// inclusive back-invalidations of the only core's hot lines).
    fn coh_active(&self) -> bool {
        self.cfg.coherence.is_some() && self.cfg.cores > 1
    }

    /// Builds the coherence hints for `core`'s load of `line` from its
    /// recent-event table and the in-flight upgrade set. All-false unless
    /// the protocol is active *and* a coherence-aware knob is on — the
    /// paper's original predictor configurations never see a set hint.
    fn coh_hints(&self, core: usize, line: LineAddr) -> CohHints {
        if !self.coh_active() || !(self.cfg.hermes.coh_features || self.cfg.hermes.filter) {
            return CohHints::default();
        }
        let t = &self.coh_tables[core];
        CohHints {
            line_remote_mod: t.line_remote_mod(line),
            page_recent_inval: t.page_recent_inval(line),
            upgrade_inflight: self.pending_upgrades.iter().any(|&(_, l)| l == line),
        }
    }

    /// Bandwidth guard for the second-level filter: a speculative read
    /// only pays when its channel's read queue has headroom. Past a
    /// quarter of the *system* read capacity (the controller scales the
    /// reported capacity by channel count, so multi-channel parts
    /// tolerate proportionally more per-channel backlog) the read queues
    /// behind real demands — it can no longer beat the hierarchy walk it
    /// is racing, yet still displaces other cores' fills, which is how
    /// Hermes loses multi-core suites even at high predictor precision.
    fn spec_read_headroom(&self, line: LineAddr, now: Cycle) -> bool {
        let (busy, cap) = self.dram.read_queue_pressure(line, now);
        busy * 4 < cap
    }

    /// Whether a store hit must pay a directory round trip before
    /// dirtying the line: coherence is active and the directory lists
    /// sharers other than `core`.
    fn needs_write_permission(&self, core: usize, line: LineAddr) -> bool {
        if !self.coh_active() {
            return false;
        }
        let sharers = self.levels[self.last()].sharers(0, line);
        sharers & !(1 << core) != 0
    }

    /// Whether a fill travelling toward a core may populate private
    /// levels: always with coherence inactive; with it active only while
    /// the shared level still holds the line (its tags carry the sharer
    /// directory, so caching a line without a directory entry would make
    /// the copy invisible to invalidations). A fill racing a
    /// back-invalidation delivers its data to the waiting core but
    /// caches nothing.
    fn coh_fill_allowed(&self, line: LineAddr) -> bool {
        !self.coh_active() || self.levels[self.last()].probe(0, line)
    }

    /// Invalidates every remote private copy of `line` on behalf of
    /// `requester`'s store and rewrites the directory to the sole new
    /// owner. A remote Modified copy is forwarded: its data is absorbed
    /// by the shared level (dirty) on its way to the requester.
    fn kill_remote_copies(&mut self, requester: usize, line: LineAddr) {
        let last = self.last();
        let remote = self.levels[last].sharers(0, line) & !(1 << requester);
        let mut invals = 0;
        let mut forwards = 0;
        for c in sharer_bits(remote) {
            let mut held = false;
            let mut dirty = false;
            for lvl in 0..last {
                if let Some(d) = self.levels[lvl].invalidate(c, line) {
                    held = true;
                    dirty |= d;
                }
            }
            if held {
                invals += 1;
                // The victim's copy was just taken Modified by a remote
                // store: its next read of this line is a dirty
                // intervention. Timing-neutral — the table is only read
                // when the coherence-aware knobs are on.
                self.coh_tables[c].record_remote_mod(line);
            }
            if dirty {
                self.levels[last].mark_dirty(0, line);
                forwards += 1;
            }
        }
        self.levels[last].set_sharers(0, line, 1 << requester);
        self.stats[requester].coh_invalidations += invals;
        self.stats[requester].coh_dirty_forwards += forwards;
    }

    /// Downgrades a remote Modified copy of `line` to Shared on behalf
    /// of `core`'s read: the dirty data moves into the shared level and
    /// the forward is counted for the requester. Returns whether an
    /// owner was downgraded.
    fn downgrade_remote_modified(&mut self, core: usize, line: LineAddr) -> bool {
        let last = self.last();
        let remote = self.levels[last].sharers(0, line) & !(1 << core);
        for c in sharer_bits(remote) {
            if (0..last).any(|lvl| self.levels[lvl].probe_dirty(c, line)) {
                for lvl in 0..last {
                    self.levels[lvl].clean(c, line);
                }
                self.levels[last].mark_dirty(0, line);
                self.stats[core].coh_dirty_forwards += 1;
                return true;
            }
        }
        false
    }

    /// Read-side dirty-intervention check at the shared level: if a
    /// remote core holds `line` Modified, downgrade it to Shared (the
    /// data moves into the shared level) and return the intervention
    /// latency the requester must wait; `None` when the read can be
    /// served in place.
    fn coh_read_intervention(&mut self, core: usize, line: LineAddr) -> Option<Cycle> {
        if !self.coh_active() {
            return None;
        }
        let lat = self.cfg.coherence.as_ref().expect("active").inv_latency as Cycle;
        self.downgrade_remote_modified(core, line).then_some(lat)
    }

    /// Sends a write-permission upgrade for `core`'s store to the
    /// directory, resolving after the round-trip latency. Stores to a
    /// line whose upgrade is already in flight are subsumed by it (one
    /// logical transaction, counted once).
    fn request_upgrade(&mut self, core: usize, line: LineAddr, pc: u64, now: Cycle) {
        if !self.pending_upgrades.insert((core, line)) {
            return;
        }
        self.stats[core].coh_upgrades += 1;
        let lat = self.cfg.coherence.as_ref().expect("coh_active").inv_latency;
        self.schedule(now + lat as Cycle, Ev::Upgrade { core, line, pc });
    }

    /// A store's write permission resolved (see [`Ev::Upgrade`]): take
    /// ownership if the copy survived the round trip, otherwise redo the
    /// whole store access (it will miss or re-request).
    fn handle_upgrade(&mut self, core: usize, line: LineAddr, pc: u64, now: Cycle) {
        self.pending_upgrades.remove(&(core, line));
        if self.levels[0].probe(core, line) {
            self.kill_remote_copies(core, line);
            self.levels[0].mark_dirty(core, line);
        } else {
            self.access_first(core, line, None, true, pc, now);
        }
    }

    /// Data hit (or arrived) at `from`: walk `core`'s request chain
    /// inward, filling each inner level and resuming every requester
    /// merged at its MSHRs.
    fn descend(
        &mut self,
        from: usize,
        core: usize,
        line: LineAddr,
        served: ServedBy,
        coh_served: bool,
        now: Cycle,
    ) {
        debug_assert!(from >= 1, "first-level hits complete synchronously");
        self.fill_and_resume(from - 1, core, line, served, coh_served, now);
    }

    /// Fills `level` on `core`'s path and completes its MSHR entry,
    /// recursing towards the cores for every merged waiter (at a shared
    /// level the entry may carry chains from several cores). At level 0
    /// this finishes the waiting loads/stores.
    fn fill_and_resume(
        &mut self,
        level: usize,
        core: usize,
        line: LineAddr,
        served: ServedBy,
        coh_served: bool,
        now: Cycle,
    ) {
        if level == 0 {
            self.complete_first_path(core, line, served, coh_served, now);
            return;
        }
        if self.coh_fill_allowed(line) {
            self.fill_mid(level, core, line, false, now);
        }
        let completed = self.levels[level].mshr_complete(core, line);
        debug_assert!(
            completed.is_some(),
            "level {level} path completion without MSHR entry"
        );
        if let Some((waiters, _)) = completed {
            for w in waiters {
                match w {
                    Waiter::Merge { core: c } => {
                        self.fill_and_resume(level - 1, c, line, served, coh_served, now)
                    }
                    _ => debug_assert!(false, "non-merge waiter at intermediate level"),
                }
            }
        }
    }

    /// Fills `core`'s first level and completes all waiters registered in
    /// its MSHR for `line`.
    fn complete_first_path(
        &mut self,
        core: usize,
        line: LineAddr,
        served: ServedBy,
        mut coh_served: bool,
        now: Cycle,
    ) {
        let Some((waiters, _)) = self.levels[0].mshr_complete(core, line) else {
            return;
        };
        let store_pc = waiters.iter().find_map(|w| match w {
            Waiter::Request {
                is_store: true, pc, ..
            } => Some(*pc),
            _ => None,
        });
        let any_store = store_pc.is_some();
        if self.coh_fill_allowed(line) {
            // A store whose data came out of this core's *own private
            // mid level* never visited the directory, so its write
            // permission still costs the upgrade round trip — the line
            // fills clean for now and is dirtied when the upgrade
            // resolves. Stores served by the shared level or DRAM
            // carried their RFO with the request and take ownership
            // immediately (the invalidations overlapped the fetch).
            let deferred_upgrade =
                any_store && served == ServedBy::L2 && self.needs_write_permission(core, line);
            if let Some(ev) =
                self.levels[0].fill(core, line, any_store && !deferred_upgrade, false, 0)
            {
                if ev.dirty {
                    self.writeback(1, core, ev.line, now);
                }
            }
            self.notify_fill(core, line);
            if self.coh_active() {
                let last = self.last();
                self.levels[last].add_sharer(0, line, core);
                if deferred_upgrade {
                    self.request_upgrade(core, line, store_pc.expect("store"), now);
                } else if any_store {
                    self.kill_remote_copies(core, line);
                } else {
                    // A racing RFO that merged into the same outstanding
                    // miss may have granted another core ownership before
                    // this load's chain resumed; serialise the load after
                    // that store by downgrading the owner (the forward
                    // rides the same memory round trip — no extra
                    // latency). When it happens the data this load
                    // consumes came out of the remote Modified copy, not
                    // the DRAM fill it rode in on: a coherence-served
                    // load for training purposes.
                    coh_served |= self.downgrade_remote_modified(core, line);
                }
                // This core re-acquired the line: its stale
                // remote-Modified mark (if any) is gone.
                self.coh_tables[core].clear_line(line);
            }
        }
        for w in waiters {
            match w {
                Waiter::Request {
                    token: Some(tok), ..
                } => self.finish_demand(core, tok, served, coh_served, now),
                // The PTE arrived: the walker moves to the next level.
                Waiter::Walk { walk } => self.walk_advance(walk, now),
                _ => {}
            }
        }
    }

    fn handle_dram_completion(&mut self, c: Completion, now: Cycle) {
        if let Some(p) = &mut self.probe {
            p.on_line_event(c.line.raw(), now, "dram_fill");
        }
        let last = self.last();
        if let Some((waiters, prefetch_only)) = self.levels[last].mshr_complete(0, c.line) {
            let sig = waiters
                .iter()
                .find_map(|w| match w {
                    Waiter::Demand { pc, .. } => Some(pc_sig(*pc)),
                    _ => None,
                })
                .unwrap_or(0);
            self.fill_last(c.line, false, prefetch_only, sig, now, false);
            for w in waiters {
                if let Waiter::Demand { core, .. } = w {
                    self.fill_and_resume(last - 1, core, c.line, ServedBy::Dram, false, now);
                }
            }
        } else {
            // A Hermes read no demand ever merged into: dropped without
            // filling any cache (§6.2.2).
            debug_assert!(
                c.hermes_initiated && !c.demanded,
                "unmatched DRAM completion that is not a dropped Hermes read"
            );
        }
    }

    fn handle_event(&mut self, ev: Ev, now: Cycle) {
        match ev {
            Ev::Lookup {
                level,
                core,
                line,
                pc,
                retried,
                walk,
            } => {
                let l = LookupCtx {
                    core,
                    line,
                    pc,
                    retried,
                    walk,
                };
                if level == self.last() {
                    self.lookup_last(l, now);
                } else {
                    self.lookup_mid(level, l, now);
                }
            }
            Ev::HermesIssue { core, line } => {
                self.stats[core].hermes_requests += 1;
                let _ = self.dram.enqueue_read(line, now, ReqKind::Hermes);
                if let Some(p) = &mut self.probe {
                    p.on_core_line_event(core, line.raw(), now, "hermes_spec_read", "");
                }
            }
            Ev::CompleteLoad {
                core,
                token,
                served,
            } => {
                self.finish_demand(core, token, served, false, now);
            }
            Ev::WalkStep { walk } => self.walk_advance(walk, now),
            Ev::Upgrade { core, line, pc } => self.handle_upgrade(core, line, pc, now),
            Ev::CohResume { core, line, served } => {
                // The data was forwarded out of a remote Modified copy:
                // an on-chip, coherence-served completion.
                if let Some(p) = &mut self.probe {
                    p.on_core_line_event(core, line.raw(), now, "coh_intervention", "");
                }
                let last = self.last();
                self.descend(last, core, line, served, true, now);
            }
        }
    }

    /// Advances the hierarchy to `now`: processes due retries, events,
    /// and DRAM completions. Finished loads accumulate in the internal
    /// buffer drained by [`Hierarchy::drain_finished`].
    pub fn tick(&mut self, now: Cycle) {
        // Retries first (they were scheduled in a side queue). The scan
        // is gated on the cached minimum: a tick with nothing due costs
        // one comparison. When due entries exist the sweep is the exact
        // historical swap-remove scan (order preserved bit-for-bit);
        // entries re-parked mid-scan land behind the cursor with a
        // future due time and are skipped.
        //
        // A due entry whose first level hasn't changed since it parked
        // (no fill, no MSHR allocation or release — tracked by
        // [`CacheLevel::change_epoch`]) is *guaranteed* to miss and be
        // rejected again, so the re-attempt collapses to its counter
        // and trace side effects: the tag array and MSHR table are not
        // walked. This is the dominant case under MSHR saturation
        // (thousands of parked accesses re-attempting every
        // `mshr_retry` cycles) and is bit-exact by construction.
        if now >= self.retry_min {
            let mut i = 0;
            while i < self.retries.len() {
                if self.retries.at(i) <= now {
                    let r = self.retries.swap_remove(i);
                    if r.epoch == self.levels[0].change_epoch(r.core) {
                        match r.walk {
                            Some(_) => self.stats[r.core].walk_mem_accesses += 1,
                            None => {
                                self.stats[r.core].l1_accesses += 1;
                                if let (Some(p), Some(tok)) = (&mut self.probe, r.token) {
                                    p.on_load_event(r.core, tok, now, "l1_miss");
                                }
                            }
                        }
                        self.levels[0].count_rejected_retry();
                        self.retries.push(now + self.cfg.mshr_retry as Cycle, r);
                    } else {
                        match r.walk {
                            Some(walk) => self.walk_access(r.core, r.line, walk, now),
                            None => {
                                self.access_first(r.core, r.line, r.token, r.is_store, r.pc, now)
                            }
                        }
                    }
                } else {
                    i += 1;
                }
            }
            self.retry_min = self.retries.min_at();
        }
        while let Some(Reverse(entry)) = self.events.peek() {
            if entry.at > now {
                break;
            }
            let Reverse(entry) = self.events.pop().expect("peeked");
            self.handle_event(entry.ev, now);
        }
        let mut buf = std::mem::take(&mut self.dram_buf);
        self.dram.pop_completions(now, &mut buf);
        for c in buf.drain(..) {
            self.handle_dram_completion(c, now);
        }
        self.dram_buf = buf;
    }

    /// Drains (core, token, served) completions for delivery to cores.
    pub fn drain_finished(&mut self, out: &mut Vec<(usize, u64, ServedBy)>) {
        out.clear();
        out.append(&mut self.finished);
    }

    /// Oracle visibility for tests: whether a line is present at any level
    /// for `core`.
    pub fn present_anywhere(&self, core: usize, line: LineAddr) -> bool {
        self.levels.iter().any(|l| l.probe(core, line))
    }

    /// Oracle visibility for tests: whether `core` holds `line` in any
    /// *private* level (the levels the sharer directory tracks).
    pub fn privately_held(&self, core: usize, line: LineAddr) -> bool {
        (0..self.last()).any(|lvl| self.levels[lvl].probe(core, line))
    }

    /// Oracle visibility for tests: the derived MESI state of `line` in
    /// `core`'s private hierarchy (see [`hermes_cache::coherence`] for
    /// the derivation). Meaningful with coherence enabled; with it off
    /// every resident line reads as Exclusive/Modified because no
    /// directory entry ever lists other sharers.
    pub fn mesi_state(&self, core: usize, line: LineAddr) -> Mesi {
        let last = self.last();
        let mut present = false;
        let mut dirty = false;
        for lvl in 0..last {
            if self.levels[lvl].probe(core, line) {
                present = true;
                dirty |= self.levels[lvl].probe_dirty(core, line);
            }
        }
        if !present {
            Mesi::Invalid
        } else if dirty {
            Mesi::Modified
        } else if self.levels[last].sharers(0, line) & !(1 << core) == 0 {
            Mesi::Exclusive
        } else {
            Mesi::Shared
        }
    }

    /// Oracle visibility for tests: the sharer-directory bitmap the
    /// shared last level holds for `line` (zero when untracked).
    pub fn directory_sharers(&self, line: LineAddr) -> u64 {
        self.levels[self.last()].sharers(0, line)
    }

    /// Oracle visibility for tests: whether the shared last level holds
    /// `line` at all.
    pub fn llc_holds(&self, line: LineAddr) -> bool {
        self.levels[self.last()].probe(0, line)
    }

    /// Oracle visibility for tests: whether `core`'s off-chip predictor
    /// is TTP and currently tracks `line` as on-chip (`None` when the
    /// predictor is not TTP). Pins the writeback-path training fix: a
    /// dirty victim written back into the LLC must not re-enter TTP.
    pub fn ttp_tracks(&self, core: usize, line: LineAddr) -> Option<bool> {
        match &self.predictors[core] {
            PredictorImpl::Ttp(t) => Some(t.contains(line)),
            _ => None,
        }
    }

    /// Translations currently in flight (page walks plus STLB refills);
    /// always zero with `vm: None` and when quiescent.
    pub fn walks_in_flight(&self) -> usize {
        self.vm.as_ref().map(|v| v.walks.len()).unwrap_or(0)
    }

    /// Prefetcher storage in bits (Table 6 rows).
    pub fn prefetcher_storage_bits(&self) -> usize {
        self.prefetchers
            .first()
            .map(|p| p.storage_bits())
            .unwrap_or(0)
    }
}

impl Hierarchy {
    /// Resolves an access's translation: the historical free stateless
    /// hash with `vm: None` (always [`TransRoute::Ready`],
    /// bit-identical to the pre-vm simulator), the TLB/walker machinery
    /// otherwise.
    fn resolve_translation(
        &mut self,
        core: usize,
        vaddr: VirtAddr,
        now: Cycle,
    ) -> (LineAddr, TransRoute) {
        if self.vm.is_some() {
            let (paddr, route) = self.vm_translate(core, vaddr, now);
            (paddr.line(), route)
        } else {
            (translate(core, vaddr).line(), TransRoute::Ready)
        }
    }

    /// Attaches a deferred access to the walk it waits on.
    fn defer_on_walk(&mut self, walk: u64, waiter: TransWaiter) {
        self.vm
            .as_mut()
            .expect("deferral without vm config")
            .walks
            .get_mut(&walk)
            .expect("deferred on unknown walk")
            .waiters
            .push(waiter);
    }
}

impl MemoryPort for Hierarchy {
    fn issue_load(&mut self, req: LoadIssue, now: Cycle) {
        let (pline, route) = self.resolve_translation(req.core, req.vaddr, now);
        let ctx = LoadContext {
            pc: req.pc,
            vaddr: req.vaddr,
            pline,
            coh: self.coh_hints(req.core, pline),
        };
        // Prediction happens at issue — POPET's features are
        // virtual-address based (§6.1.3) — but a predicted-off-chip
        // load's speculative DRAM read, and the demand access itself,
        // wait for the PFN when the dTLB misses.
        let pred = if self.cfg.hermes.enabled() {
            self.predict(req.core, &ctx)
        } else {
            Prediction::negative()
        };
        let want_spec = self.cfg.hermes.enabled() && pred.go_offchip && !self.cfg.hermes.passive;
        // The filter verdict is split out of the firing condition (same
        // short-circuit evaluation order, bit-identical decisions) so
        // the probe can attribute a suppressed speculative read to the
        // filter rather than to the predictor.
        let filter_verdict = (want_spec && self.cfg.hermes.filter).then(|| {
            self.filters[req.core].allow(req.pc, ctx.coh) && self.spec_read_headroom(pline, now)
        });
        let hermes_min = (want_spec && filter_verdict.unwrap_or(true))
            .then(|| now + self.cfg.hermes.issue_latency as Cycle);
        if let Some(p) = &mut self.probe {
            p.on_issue(req.core, req.token, req.pc, pline.raw(), now);
            if self.cfg.hermes.enabled() {
                p.on_prediction(
                    req.core,
                    req.token,
                    pred.go_offchip,
                    pred.confidence(),
                    hermes_min.is_some(),
                    filter_verdict,
                );
            }
            if matches!(route, TransRoute::Defer(_)) {
                p.on_load_event(req.core, req.token, now, "tlb_walk_start");
            }
        }
        self.loads.insert(
            key(req.core, req.token),
            LoadRec {
                ctx,
                pred,
                issue: now,
                fired: hermes_min.is_some(),
            },
        );
        match route {
            TransRoute::Ready => {
                if let Some(at) = hermes_min {
                    self.schedule(
                        at,
                        Ev::HermesIssue {
                            core: req.core,
                            line: pline,
                        },
                    );
                }
                self.access_first(req.core, pline, Some(req.token), false, req.pc, now);
            }
            TransRoute::Defer(walk) => self.defer_on_walk(
                walk,
                TransWaiter::Load {
                    token: req.token,
                    pc: req.pc,
                    pline,
                    hermes_min,
                },
            ),
        }
    }

    fn issue_store(&mut self, req: StoreIssue, now: Cycle) {
        let (pline, route) = self.resolve_translation(req.core, req.vaddr, now);
        match route {
            TransRoute::Ready => self.access_first(req.core, pline, None, true, req.pc, now),
            TransRoute::Defer(walk) => {
                self.defer_on_walk(walk, TransWaiter::Store { pc: req.pc, pline })
            }
        }
    }

    fn note_lifecycle(&mut self, core: CoreId, token: u64, at: Cycle, kind: &'static str) {
        // Pure observation: the out-of-order core reports pipeline
        // markers (dispatch/complete/retire) for sampled loads. The probe
        // drops events for unsampled tokens, so this is free when off.
        if let Some(p) = &mut self.probe {
            p.on_load_event(core, token, at, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use hermes_prefetch::PrefetcherKind;
    use hermes_vm::{TlbConfig, VmConfig};

    /// Ticks from `from` until `want` further loads completed (panics on
    /// stall-out).
    fn run_span(h: &mut Hierarchy, from: Cycle, want: usize) {
        let mut done = 0;
        let mut buf = Vec::new();
        for now in from..from + 1_000_000 {
            h.tick(now);
            h.drain_finished(&mut buf);
            done += buf.len();
            if done >= want {
                return;
            }
        }
        panic!("only {done} of {want} loads completed");
    }

    fn load(core: usize, token: u64, vaddr: u64) -> LoadIssue {
        LoadIssue {
            core,
            token,
            pc: 0x400_000 + token * 4,
            vaddr: VirtAddr::new(vaddr),
        }
    }

    /// Merging into an STLB→dTLB refill in flight is an STLB *hit* and
    /// must not inflate `stlb_misses` (only true walks count).
    #[test]
    fn stlb_refill_merges_are_not_counted_as_misses() {
        let cfg = SystemConfig::baseline_1c()
            .with_prefetcher(PrefetcherKind::None)
            .with_vm(
                VmConfig::baseline()
                    // 2 sets x 1 way: pages 0 and 2 conflict in set 0.
                    .with_dtlb(TlbConfig::new(2, 1, 0))
                    .with_stlb(TlbConfig::new(64, 4, 8)),
            );
        let mut h = Hierarchy::new(cfg);
        let page_a = 0u64;
        let page_b = 2 << 12; // same dTLB set as A

        // Cold loads to A then B: two real walks (two STLB misses); B
        // evicts A from the one-way dTLB set.
        h.issue_load(load(0, 0, page_a), 0);
        run_span(&mut h, 0, 1);
        h.issue_load(load(0, 1, page_b), 1_000_000);
        run_span(&mut h, 1_000_000, 1);
        let s = h.core_stats()[0];
        assert_eq!((s.stlb_misses, s.walks_completed), (2, 2));

        // Two same-cycle loads back to A: dTLB misses, but the STLB has
        // the entry — one refill, the second load merging into it. No
        // new walk, and crucially no new STLB miss counted.
        h.issue_load(load(0, 2, page_a), 2_000_000);
        h.issue_load(load(0, 3, page_a), 2_000_000);
        run_span(&mut h, 2_000_000, 2);
        let s = h.core_stats()[0];
        assert_eq!(s.dtlb_misses, 4, "A, B, and both refill loads missed");
        assert_eq!(
            s.stlb_misses, 2,
            "refill merges must not count as STLB misses"
        );
        assert_eq!(s.walks_completed, 2, "the refill is not a page walk");
        assert_eq!(h.walks_in_flight(), 0);
    }
}
