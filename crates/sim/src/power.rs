//! Event-energy power model (the §8.5 / Fig. 18 substitution for McPAT).
//!
//! Dynamic energy is event count × per-event energy, with per-structure
//! energies in the ratio a McPAT run of this configuration produces (SRAM
//! access energy grows with array size; DRAM channel traffic dominates the
//! "bus" component). Fig. 18 reports *normalized dynamic power*, which is
//! exactly the ratio of these totals per unit time — insensitive to the
//! absolute calibration constant, which is why an event-energy model
//! preserves the figure's shape.

use hermes_dram::controller::DramStats;

use crate::hierarchy::CoreHierStats;

/// Per-event energies in nanojoules (relative magnitudes follow McPAT
/// characterisations of comparable arrays at 22 nm).
///
/// The three cache energies map onto the N-level hierarchy by role, as
/// [`CoreHierStats`] does: `e_l1` prices first-level accesses, `e_l2`
/// every intermediate level, `e_llc` the last level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// One first-level (L1D) access.
    pub e_l1: f64,
    /// One intermediate-level (L2/L3) access.
    pub e_l2: f64,
    /// One last-level cache access.
    pub e_llc: f64,
    /// One DRAM read or write (line transfer, row activation amortised).
    pub e_dram: f64,
    /// One POPET prediction+training pass (five 5-bit table reads).
    pub e_popet: f64,
    /// One prefetcher table access.
    pub e_prefetcher: f64,
    /// Per-instruction core energy ("Others" in Fig. 18).
    pub e_instr: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            e_l1: 0.03,
            e_l2: 0.09,
            e_llc: 0.45,
            e_dram: 16.0,
            e_popet: 0.004,
            e_prefetcher: 0.03,
            e_instr: 0.08,
        }
    }
}

/// Dynamic-energy breakdown of a run, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// L1D dynamic energy.
    pub l1: f64,
    /// L2 dynamic energy.
    pub l2: f64,
    /// LLC dynamic energy.
    pub llc: f64,
    /// DRAM/bus dynamic energy.
    pub bus: f64,
    /// Off-chip predictor energy.
    pub predictor: f64,
    /// Prefetcher metadata energy.
    pub prefetcher: f64,
    /// Core/other energy.
    pub other: f64,
}

impl PowerBreakdown {
    /// Computes the breakdown from event counts.
    pub fn compute(
        model: &PowerModel,
        cores: &[CoreHierStats],
        dram: &DramStats,
        instructions: u64,
        predictions: u64,
        prefetcher_accesses: u64,
    ) -> Self {
        let l1_acc: u64 = cores.iter().map(|c| c.l1_accesses).sum();
        let l2_acc: u64 = cores.iter().map(|c| c.l2_accesses).sum();
        let llc_acc: u64 = cores.iter().map(|c| c.llc_demand_accesses).sum();
        Self {
            l1: l1_acc as f64 * model.e_l1,
            l2: l2_acc as f64 * model.e_l2,
            llc: llc_acc as f64 * model.e_llc,
            bus: (dram.total_reads() + dram.writes) as f64 * model.e_dram,
            predictor: predictions as f64 * model.e_popet,
            prefetcher: prefetcher_accesses as f64 * model.e_prefetcher,
            other: instructions as f64 * model.e_instr,
        }
    }

    /// Total dynamic energy.
    pub fn total(&self) -> f64 {
        self.l1 + self.l2 + self.llc + self.bus + self.predictor + self.prefetcher + self.other
    }

    /// Dynamic power relative to a baseline run covering the same work
    /// (the Fig. 18 metric): energy ratio scaled by the cycle ratio.
    pub fn normalized_power(
        &self,
        cycles: u64,
        baseline: &PowerBreakdown,
        baseline_cycles: u64,
    ) -> f64 {
        if baseline.total() == 0.0 || cycles == 0 || baseline_cycles == 0 {
            return 0.0;
        }
        (self.total() / cycles as f64) / (baseline.total() / baseline_cycles as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_dominates_for_memory_bound_runs() {
        let model = PowerModel::default();
        let cores = vec![CoreHierStats {
            l1_accesses: 1000,
            l2_accesses: 100,
            llc_demand_accesses: 50,
            ..Default::default()
        }];
        let dram = DramStats {
            reads_demand: 40,
            writes: 10,
            ..Default::default()
        };
        let p = PowerBreakdown::compute(&model, &cores, &dram, 5000, 1000, 50);
        assert!(p.bus > p.l1 + p.l2 + p.llc);
        assert!(p.total() > 0.0);
    }

    #[test]
    fn popet_energy_is_tiny() {
        let model = PowerModel::default();
        let cores = vec![CoreHierStats {
            l1_accesses: 1000,
            ..Default::default()
        }];
        let dram = DramStats::default();
        let p = PowerBreakdown::compute(&model, &cores, &dram, 1000, 1000, 0);
        assert!(
            p.predictor < 0.2 * p.l1,
            "POPET must cost far less than L1 traffic"
        );
    }

    #[test]
    fn normalized_power_identity() {
        let model = PowerModel::default();
        let cores = vec![CoreHierStats {
            l1_accesses: 10,
            ..Default::default()
        }];
        let dram = DramStats::default();
        let p = PowerBreakdown::compute(&model, &cores, &dram, 10, 0, 0);
        assert!((p.normalized_power(100, &p, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_power_zero_guards() {
        let p = PowerBreakdown::default();
        assert_eq!(p.normalized_power(0, &p, 10), 0.0);
    }
}
