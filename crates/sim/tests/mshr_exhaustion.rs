//! MSHR exhaustion and retry-path coverage at every configured level.
//!
//! Floods hierarchies with far more concurrent distinct-line loads than
//! any level has MSHRs, so allocation fails and the retry machinery runs
//! at each level: the first level's side retry queue and the
//! `retried`-lookup events at every outer level. Every load must still
//! complete exactly once, and no MSHR entry may remain allocated
//! afterwards (a stranded waiter would deadlock a real run).
//! Parameterised over 2-, 3-, and 4-level topologies, with and without
//! the address-translation subsystem: page-table-walker reads share the
//! same MSHR tables as demand traffic and must survive exhaustion (and
//! drive the retry queues) without stranding anyone.

use hermes_cache::{CacheConfig, LevelConfig, ReplacementKind};
use hermes_cpu::{LoadIssue, MemoryPort, ServedBy};
use hermes_sim::hierarchy::Hierarchy;
use hermes_sim::SystemConfig;
use hermes_types::VirtAddr;
use hermes_vm::{TlbConfig, VmConfig};

/// Tiny caches (so everything misses) with `mshrs` registers per level.
fn tiny(name: &str, mshrs: usize) -> CacheConfig {
    // 2 sets x 2 ways.
    CacheConfig::new(name, 4 * 64, 2, ReplacementKind::Lru, mshrs).with_latency(2)
}

fn topology(depth: usize) -> Vec<LevelConfig> {
    assert!((2..=4).contains(&depth));
    // Strictly decreasing MSHR counts: with equal counts the innermost
    // table caps concurrency and outer tables could never fill
    // (pigeonhole); decreasing counts force a full table — and therefore
    // the retry path — at every single level.
    let mut v = vec![LevelConfig::private(tiny("L1D", 8))];
    for i in 1..depth - 1 {
        v.push(LevelConfig::private(tiny(&format!("L{}", i + 1), 5 - i)));
    }
    v.push(LevelConfig::shared(tiny("LLC", 2)));
    v
}

fn config(depth: usize) -> SystemConfig {
    SystemConfig {
        levels: Some(topology(depth)),
        ..SystemConfig::baseline_1c().with_prefetcher(hermes_prefetch::PrefetcherKind::None)
    }
}

/// Issues `n` distinct-line loads at cycle 0 and ticks to completion.
/// Returns the completions in finish order.
fn flood(depth: usize, n: u64) -> (Hierarchy, Vec<(usize, u64, ServedBy)>) {
    let mut h = Hierarchy::new(config(depth));
    for t in 0..n {
        h.issue_load(
            LoadIssue {
                core: 0,
                token: t,
                pc: 0x400_000 + t * 4,
                // Distinct lines within one page (no prefetcher anyway).
                vaddr: VirtAddr::new(t * 64),
            },
            0,
        );
    }
    let mut done = Vec::new();
    let mut buf = Vec::new();
    for now in 0..2_000_000 {
        h.tick(now);
        h.drain_finished(&mut buf);
        done.append(&mut buf);
        if done.len() as u64 == n {
            break;
        }
    }
    (h, done)
}

#[test]
fn exhaustion_retries_and_completes_at_every_depth() {
    for depth in [2usize, 3, 4] {
        let n = 24u64; // 12x the 2-register tables
        let (h, done) = flood(depth, n);
        assert_eq!(
            done.len() as u64,
            n,
            "{depth}-level: only {} of {n} loads completed",
            done.len()
        );

        // Exactly one completion per token, each off-chip (tiny caches).
        let mut tokens: Vec<u64> = done.iter().map(|&(_, t, _)| t).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..n).collect::<Vec<_>>(), "{depth}-level tokens");
        assert!(
            done.iter().all(|&(_, _, s)| s == ServedBy::Dram),
            "{depth}-level: all-miss flood must be served by DRAM"
        );

        // Every level was driven into MSHR exhaustion and recovered.
        let levels = h.level_stats();
        assert_eq!(levels.len(), depth);
        for (name, s) in &levels {
            assert!(
                s.mshr_rejections > 0,
                "{depth}-level: level {name} never hit a full MSHR table \
                 (rejections={})",
                s.mshr_rejections
            );
        }

        // No stranded waiters anywhere.
        assert_eq!(
            h.mshrs_in_flight(),
            0,
            "{depth}-level: MSHR entries left allocated after quiescence"
        );
    }
}

#[test]
fn merged_loads_under_exhaustion_all_complete() {
    // Same line issued many times: one entry, many waiters — merging must
    // not interact badly with concurrent exhaustion on other lines.
    for depth in [2usize, 3, 4] {
        let mut h = Hierarchy::new(config(depth));
        let n = 12u64;
        for t in 0..n {
            let line = if t % 2 == 0 { 0 } else { t * 64 };
            h.issue_load(
                LoadIssue {
                    core: 0,
                    token: t,
                    pc: 0x500_000 + t * 4,
                    vaddr: VirtAddr::new(line),
                },
                0,
            );
        }
        let mut done = Vec::new();
        let mut buf = Vec::new();
        for now in 0..2_000_000 {
            h.tick(now);
            h.drain_finished(&mut buf);
            done.append(&mut buf);
            if done.len() as u64 == n {
                break;
            }
        }
        assert_eq!(done.len() as u64, n, "{depth}-level merge flood");
        assert_eq!(h.mshrs_in_flight(), 0);
    }
}

#[test]
fn store_write_allocates_survive_exhaustion() {
    use hermes_cpu::StoreIssue;
    for depth in [2usize, 3, 4] {
        let mut h = Hierarchy::new(config(depth));
        // Stores have no tokens; completion is only observable through
        // quiescence and the absence of stranded MSHR entries.
        for t in 0..16u64 {
            h.issue_store(
                StoreIssue {
                    core: 0,
                    pc: 0x600_000 + t * 4,
                    vaddr: VirtAddr::new(t * 64),
                },
                0,
            );
        }
        let mut buf = Vec::new();
        for now in 0..2_000_000 {
            h.tick(now);
            h.drain_finished(&mut buf);
            if h.mshrs_in_flight() == 0 && h.next_event_at() == u64::MAX {
                break;
            }
        }
        assert_eq!(h.mshrs_in_flight(), 0, "{depth}-level store flood stranded");
        assert!(
            h.level_stats()[0].1.mshr_rejections > 0,
            "{depth}-level: store flood never exhausted the first level"
        );
    }
}

/// `config(depth)` plus a deliberately starved translation subsystem:
/// tiny TLBs and a 2-entry walk cache, so nearly every load drags a
/// multi-level page walk through the already-tiny MSHR tables.
fn vm_config(depth: usize) -> SystemConfig {
    SystemConfig {
        vm: Some(
            VmConfig::baseline()
                .with_dtlb(TlbConfig::new(4, 2, 0))
                .with_stlb(TlbConfig::new(8, 2, 2))
                .with_pwc_entries(2),
        ),
        ..config(depth)
    }
}

#[test]
fn walker_and_demand_share_mshrs_without_stranding() {
    for depth in [2usize, 3, 4] {
        let mut h = Hierarchy::new(vm_config(depth));
        let n = 24u64;
        for t in 0..n {
            h.issue_load(
                LoadIssue {
                    core: 0,
                    token: t,
                    pc: 0x700_000 + t * 4,
                    // Distinct pages with scattered radix prefixes, so
                    // walks cannot all share PTE lines.
                    vaddr: VirtAddr::new((t * 3 + 1) << 21),
                },
                0,
            );
        }
        let mut done = Vec::new();
        let mut buf = Vec::new();
        for now in 0..2_000_000 {
            h.tick(now);
            h.drain_finished(&mut buf);
            done.append(&mut buf);
            if done.len() as u64 == n {
                break;
            }
        }
        assert_eq!(
            done.len() as u64,
            n,
            "{depth}-level walker flood: only {} of {n} loads completed",
            done.len()
        );
        let mut tokens: Vec<u64> = done.iter().map(|&(_, t, _)| t).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..n).collect::<Vec<_>>(), "{depth}-level tokens");

        let s = h.core_stats()[0];
        assert!(s.walks_completed > 0, "{depth}-level: no walks ran");
        assert!(
            s.walk_mem_accesses >= s.walks_completed,
            "{depth}-level: every walk reads at least one PTE"
        );
        assert!(
            h.level_stats()[0].1.mshr_rejections > 0,
            "{depth}-level: the flood (demand + walker) never exhausted \
             the first-level MSHRs"
        );
        // Nothing stranded: no MSHR entries, no half-finished walks.
        assert_eq!(
            h.mshrs_in_flight(),
            0,
            "{depth}-level: MSHR entries left allocated after quiescence"
        );
        assert_eq!(
            h.walks_in_flight(),
            0,
            "{depth}-level: walks left in flight after quiescence"
        );
    }
}

#[test]
fn same_page_loads_merge_into_one_walk_under_exhaustion() {
    for depth in [2usize, 3, 4] {
        let mut h = Hierarchy::new(vm_config(depth));
        let n = 16u64;
        for t in 0..n {
            // Two pages, eight distinct lines each: walks merge while the
            // line misses still flood the tables.
            let page = (t % 2) << 21;
            h.issue_load(
                LoadIssue {
                    core: 0,
                    token: t,
                    pc: 0x800_000 + t * 4,
                    vaddr: VirtAddr::new(page + (t / 2) * 64),
                },
                0,
            );
        }
        let mut done = Vec::new();
        let mut buf = Vec::new();
        for now in 0..2_000_000 {
            h.tick(now);
            h.drain_finished(&mut buf);
            done.append(&mut buf);
            if done.len() as u64 == n {
                break;
            }
        }
        assert_eq!(done.len() as u64, n, "{depth}-level same-page merge");
        let s = h.core_stats()[0];
        assert!(
            s.walks_completed <= 2,
            "{depth}-level: two pages must need at most two walks, got {}",
            s.walks_completed
        );
        assert_eq!(h.mshrs_in_flight(), 0);
        assert_eq!(h.walks_in_flight(), 0);
    }
}

#[test]
fn store_write_allocates_with_walks_survive_exhaustion() {
    use hermes_cpu::StoreIssue;
    for depth in [2usize, 3, 4] {
        let mut h = Hierarchy::new(vm_config(depth));
        for t in 0..16u64 {
            h.issue_store(
                StoreIssue {
                    core: 0,
                    pc: 0x900_000 + t * 4,
                    vaddr: VirtAddr::new((t * 5 + 3) << 21),
                },
                0,
            );
        }
        let mut buf = Vec::new();
        for now in 0..2_000_000 {
            h.tick(now);
            h.drain_finished(&mut buf);
            if h.mshrs_in_flight() == 0 && h.walks_in_flight() == 0 && h.next_event_at() == u64::MAX
            {
                break;
            }
        }
        assert_eq!(
            h.mshrs_in_flight(),
            0,
            "{depth}-level store+walk flood stranded MSHRs"
        );
        assert_eq!(
            h.walks_in_flight(),
            0,
            "{depth}-level store+walk flood stranded walks"
        );
        let s = h.core_stats()[0];
        assert!(s.walks_completed > 0, "{depth}-level: stores walked too");
    }
}
