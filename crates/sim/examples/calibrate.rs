//! Calibration harness used during development: headline shape of the
//! paper's main result across the default suite.

use hermes::{HermesConfig, PredictorKind};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::{system::run_one, SystemConfig};
use hermes_trace::suite;

fn main() {
    let (w, s) = (30_000u64, 150_000u64);
    let mut g = [vec![], vec![], vec![], vec![]];
    for spec in suite::default_suite().iter() {
        let base = run_one(
            SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None),
            spec,
            w,
            s,
        );
        let pythia = run_one(SystemConfig::baseline_1c(), spec, w, s);
        let hermes = run_one(
            SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Popet)),
            spec,
            w,
            s,
        );
        let ideal = run_one(
            SystemConfig::baseline_1c().with_hermes(HermesConfig::hermes_o(PredictorKind::Ideal)),
            spec,
            w,
            s,
        );
        let b = base.cores[0].ipc();
        let ratios = [
            pythia.cores[0].ipc() / b,
            hermes.cores[0].ipc() / b,
            ideal.cores[0].ipc() / b,
        ];
        for (i, r) in ratios.iter().enumerate() {
            g[i].push(*r);
        }
        g[3].push(hermes.cores[0].pred.accuracy());
        println!(
            "{:20} pythia={:+6.1}% p+hO={:+6.1}%vsP p+ideal={:+6.1}%vsP acc={:3.0}% cov={:3.0}% reads p={} i={} (d/p/h {} {} {} drop {})",
            spec.name,
            (ratios[0] - 1.0) * 100.0,
            (ratios[1] / ratios[0] - 1.0) * 100.0,
            (ratios[2] / ratios[0] - 1.0) * 100.0,
            hermes.cores[0].pred.accuracy() * 100.0,
            hermes.cores[0].pred.coverage() * 100.0,
            pythia.dram.total_reads(),
            ideal.dram.total_reads(),
            ideal.dram.reads_demand,
            ideal.dram.reads_prefetch,
            ideal.dram.reads_hermes,
            ideal.dram.hermes_dropped,
        );
    }
    let geo = |v: &Vec<f64>| {
        let s: f64 = v.iter().map(|x: &f64| x.ln()).sum();
        (s / v.len() as f64).exp()
    };
    println!(
        "GEOMEAN: pythia {:.3}  pythia+hermesO {:.3}  pythia+ideal {:.3}  mean acc {:.2}",
        geo(&g[0]),
        geo(&g[1]),
        geo(&g[2]),
        g[3].iter().sum::<f64>() / g[3].len() as f64
    );
}
