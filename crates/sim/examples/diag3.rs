use hermes::{HermesConfig, PredictorKind};
use hermes_prefetch::PrefetcherKind;
use hermes_sim::{system::run_one, SystemConfig};
use hermes_trace::suite;

fn main() {
    for name in ["cactus-like", "ligra-pagerank", "ligra-components"] {
        let spec = suite::default_suite()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let (w, s) = (30_000u64, 150_000u64);
        for (label, cfg) in [
            (
                "none      ",
                SystemConfig::baseline_1c().with_prefetcher(PrefetcherKind::None),
            ),
            (
                "ideal-only",
                SystemConfig::baseline_1c()
                    .with_prefetcher(PrefetcherKind::None)
                    .with_hermes(HermesConfig::hermes_o(PredictorKind::Ideal)),
            ),
            ("pythia    ", SystemConfig::baseline_1c()),
            (
                "pyth+ideal",
                SystemConfig::baseline_1c()
                    .with_hermes(HermesConfig::hermes_o(PredictorKind::Ideal)),
            ),
        ] {
            let r = run_one(cfg, &spec, w, s);
            let c = &r.cores[0];
            println!(
                "{name:16} {label}: ipc={:.3} offchip_lat={:6.1} served llc={:5} dram={:5} reads={:5} rowhit%={:4.1} pf_useful={}",
                c.ipc(), c.avg_offchip_latency(), c.core.served_llc, c.core.served_dram,
                r.dram.total_reads(),
                100.0 * r.dram.row_hits as f64 / (r.dram.row_hits + r.dram.row_empty + r.dram.row_conflicts).max(1) as f64,
                c.hier.prefetches_useful,
            );
        }
    }
}
