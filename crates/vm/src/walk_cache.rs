//! The page-walk cache: a small fully-associative LRU cache of *non-leaf*
//! page-table entries.
//!
//! Real walkers keep the top of the radix tree cached (Intel's paging
//! structure caches, AMD's page-walk cache), so a warm walk usually
//! issues only the leaf PTE access. Keys are
//! [`PageMap::pwc_key`](crate::PageMap::pwc_key) values — `(prefix,
//! depth)` pairs; leaf PTEs never enter (that is the TLB's job).

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct WalkCache {
    cap: usize,
    /// `(key, stamp)`, unordered.
    entries: Vec<(u64, u64)>,
    clock: u64,
}

impl WalkCache {
    /// An empty cache holding up to `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "page-walk cache needs capacity");
        Self {
            cap,
            entries: Vec::with_capacity(cap),
            clock: 0,
        }
    }

    /// Whether `key` is cached; refreshes its LRU position on a hit.
    pub fn lookup(&mut self, key: u64) -> bool {
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = self.clock;
            true
        } else {
            false
        }
    }

    /// Inserts `key` (idempotent), evicting the LRU entry at capacity.
    pub fn insert(&mut self, key: u64) {
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            e.1 = self.clock;
            return;
        }
        if self.entries.len() == self.cap {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("cap >= 1");
            self.entries.swap_remove(lru);
        }
        self.entries.push((key, self.clock));
    }

    /// Cached entries (diagnostics/tests).
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_at_capacity() {
        let mut c = WalkCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.lookup(1)); // 1 refreshed, 2 now LRU
        c.insert(3);
        assert!(c.lookup(1));
        assert!(!c.lookup(2));
        assert!(c.lookup(3));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut c = WalkCache::new(4);
        c.insert(7);
        c.insert(7);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = WalkCache::new(0);
    }
}
