//! Address translation for the Hermes reproduction: TLBs, a page-walk
//! cache, and the deterministic page map the hardware walker traverses.
//!
//! The paper models the TLB as accessed in parallel with the L1 (§3.1)
//! and notes that Hermes-O can only launch its speculative DRAM access
//! once the *physical* address is known — so translation latency sits on
//! the critical path of exactly the loads Hermes accelerates. This crate
//! supplies the structures a timing simulator needs to model that
//! honestly:
//!
//! * [`Tlb`] — a set-associative, LRU translation buffer used for both
//!   the per-core L1 dTLB and the L2 STLB (private or shared);
//! * [`WalkCache`] — a small fully-associative cache of upper-level
//!   page-table entries that lets the walker skip the top of the radix
//!   tree;
//! * [`PageMap`] — the deterministic virtual→physical mapping (4 KB base
//!   pages plus optional 2 MB huge pages) and the physical cache-line
//!   addresses of the page-table entries a radix walk touches.
//!
//! Like `hermes-cache`, everything here is *passive*: no queues, no
//! clocks. The walker's state machine — issuing the PTE accesses through
//! the cache hierarchy, merging same-page requests, waking deferred
//! loads — lives in the hierarchy engine (`hermes-sim`), which owns the
//! event loop those accesses must flow through.
//!
//! # Example
//!
//! ```
//! use hermes_vm::{PageMap, Tlb, TlbConfig};
//! use hermes_types::VirtAddr;
//!
//! let map = PageMap::new(0); // all 4 KB pages
//! let v = VirtAddr::new(0x7fff_1234);
//! let (p, huge) = map.translate(0, v);
//! assert!(!huge);
//! assert_eq!(p.offset_in_page(), v.offset_in_page());
//!
//! let mut tlb = Tlb::new(&TlbConfig::new(64, 4, 0));
//! let (vpn, key) = (v.page_number(), PageMap::tlb_key(None, v.page_number(), false));
//! assert!(!tlb.lookup(vpn, key));
//! tlb.insert(vpn, key);
//! assert!(tlb.lookup(vpn, key));
//! ```

pub mod config;
pub mod page_map;
pub mod tlb;
pub mod walk_cache;

pub use config::{TlbConfig, VmConfig};
pub use page_map::{PageMap, HUGE_PAGE_BITS, HUGE_PAGE_SIZE, PT_LEVEL_BITS};
pub use tlb::Tlb;
pub use walk_cache::WalkCache;
