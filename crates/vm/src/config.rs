//! Configuration of the translation subsystem.

/// Geometry and latency of one TLB level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries (per core for private structures; per core before
    /// scaling for a shared STLB, mirroring the cache levels' "per-core
    /// share" convention).
    pub entries: usize,
    /// Associativity; `entries / ways` sets must be a power of two.
    pub ways: usize,
    /// Added translation latency in cycles when this level provides the
    /// mapping. The paper accesses the L1 dTLB in parallel with the L1D
    /// (§3.1), so the dTLB conventionally uses 0; the STLB latency is
    /// paid on every dTLB miss before the memory access can issue.
    pub latency: u32,
}

impl TlbConfig {
    /// Creates a TLB geometry.
    pub fn new(entries: usize, ways: usize, latency: u32) -> Self {
        Self {
            entries,
            ways,
            latency,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.entries / self.ways
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if entries/ways are zero, entries is not a multiple of
    /// ways, or the set count is not a power of two.
    pub fn validate(&self) {
        assert!(self.entries >= 1, "TLB needs at least one entry");
        assert!(self.ways >= 1, "TLB needs at least one way");
        assert_eq!(
            self.entries % self.ways,
            0,
            "TLB entries ({}) must be a multiple of ways ({})",
            self.entries,
            self.ways
        );
        assert!(
            self.sets().is_power_of_two(),
            "TLB set count ({}) must be a power of two",
            self.sets()
        );
    }
}

/// Complete configuration of the address-translation subsystem.
///
/// `SystemConfig::vm` carries an `Option<VmConfig>`: `None` keeps the
/// historical free stateless translation (bit-identical to the
/// pre-subsystem simulator), `Some` enables the TLBs and the hardware
/// page-table walker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmConfig {
    /// Per-core L1 data TLB (latency 0 = accessed in parallel with the
    /// L1D, the paper's model).
    pub dtlb: TlbConfig,
    /// Second-level TLB; its latency is paid on every dTLB miss.
    pub stlb: TlbConfig,
    /// Whether the STLB is one structure shared by all cores (entries
    /// scaled by core count, entries tagged per core) or replicated per
    /// core.
    pub stlb_shared: bool,
    /// Per-core page-walk cache entries (fully associative, LRU). Caches
    /// the non-leaf levels of the radix tree so a warm walker usually
    /// issues only the leaf PTE access.
    pub pwc_entries: usize,
    /// Per-mille of the address space backed by 2 MB huge pages
    /// (0 = all 4 KB, 1000 = all 2 MB; in between, a deterministic hash
    /// of each 2 MB region decides).
    pub huge_page_pm: u32,
}

impl VmConfig {
    /// A contemporary baseline: 64-entry 4-way dTLB accessed in parallel
    /// with the L1, 1024-entry 8-way private STLB at 8 cycles, 32-entry
    /// page-walk cache, 4 KB pages only.
    pub fn baseline() -> Self {
        Self {
            dtlb: TlbConfig::new(64, 4, 0),
            stlb: TlbConfig::new(1024, 8, 8),
            stlb_shared: false,
            pwc_entries: 32,
            huge_page_pm: 0,
        }
    }

    /// Replaces the dTLB geometry (TLB-size sweeps).
    pub fn with_dtlb(mut self, dtlb: TlbConfig) -> Self {
        self.dtlb = dtlb;
        self
    }

    /// Replaces the STLB geometry.
    pub fn with_stlb(mut self, stlb: TlbConfig) -> Self {
        self.stlb = stlb;
        self
    }

    /// Shares one scaled STLB between all cores.
    pub fn with_shared_stlb(mut self, shared: bool) -> Self {
        self.stlb_shared = shared;
        self
    }

    /// Replaces the huge-page fraction (page-size sweeps).
    pub fn with_huge_page_pm(mut self, pm: u32) -> Self {
        self.huge_page_pm = pm;
        self
    }

    /// Replaces the page-walk-cache capacity.
    pub fn with_pwc_entries(mut self, entries: usize) -> Self {
        self.pwc_entries = entries;
        self
    }

    /// The STLB geometry as instantiated for one structural instance in a
    /// `cores`-core system (scaled when shared, like the shared LLC).
    pub fn stlb_instantiated(&self, cores: usize) -> TlbConfig {
        if self.stlb_shared {
            TlbConfig::new(self.stlb.entries * cores, self.stlb.ways, self.stlb.latency)
        } else {
            self.stlb.clone()
        }
    }

    /// Validates the composite configuration for a `cores`-core system.
    ///
    /// # Panics
    ///
    /// Panics on a zero-capacity structure or a geometry that does not
    /// yield power-of-two set counts.
    pub fn validate(&self, cores: usize) {
        self.dtlb.validate();
        self.stlb.validate();
        self.stlb_instantiated(cores).validate();
        assert!(self.pwc_entries >= 1, "page-walk cache needs capacity");
        assert!(
            self.huge_page_pm <= 1000,
            "huge_page_pm is per-mille (got {})",
            self.huge_page_pm
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        let c = VmConfig::baseline();
        c.validate(1);
        c.validate(8);
        assert_eq!(c.dtlb.sets(), 16);
        assert_eq!(c.stlb.sets(), 128);
    }

    #[test]
    fn shared_stlb_scales() {
        let c = VmConfig::baseline().with_shared_stlb(true);
        let inst = c.stlb_instantiated(8);
        assert_eq!(inst.entries, 8 * 1024);
        assert_eq!(inst.latency, c.stlb.latency);
        c.validate(8);
    }

    #[test]
    fn builders_compose() {
        let c = VmConfig::baseline()
            .with_dtlb(TlbConfig::new(16, 4, 0))
            .with_stlb(TlbConfig::new(256, 8, 12))
            .with_huge_page_pm(1000)
            .with_pwc_entries(8);
        assert_eq!(c.dtlb.entries, 16);
        assert_eq!(c.stlb.latency, 12);
        assert_eq!(c.huge_page_pm, 1000);
        assert_eq!(c.pwc_entries, 8);
        c.validate(2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        TlbConfig::new(48, 4, 0).validate();
    }

    #[test]
    #[should_panic(expected = "per-mille")]
    fn out_of_range_huge_fraction_rejected() {
        VmConfig::baseline().with_huge_page_pm(1001).validate(1);
    }
}
