//! A set-associative, LRU translation lookaside buffer.
//!
//! Entries are opaque `u64` tags built by
//! [`PageMap::tlb_key`](crate::PageMap::tlb_key), which packs the page
//! number, the page size, and (for shared structures) the owning core.
//! The set index comes from the low bits of the page number, like real
//! TLBs, so strided patterns conflict realistically. One array serves
//! both page sizes: a huge-page entry simply occupies one entry under
//! its huge page number.

use crate::config::TlbConfig;

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: usize,
    ways: usize,
    /// `sets * ways` slots; `None` = invalid.
    entries: Vec<Option<u64>>,
    /// LRU stamps parallel to `entries`.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics on an invalid geometry (see [`TlbConfig::validate`]).
    pub fn new(cfg: &TlbConfig) -> Self {
        cfg.validate();
        let n = cfg.sets() * cfg.ways;
        Self {
            sets: cfg.sets(),
            ways: cfg.ways,
            entries: vec![None; n],
            stamps: vec![0; n],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_range(&self, page_number: u64) -> std::ops::Range<usize> {
        let set = (page_number as usize) & (self.sets - 1);
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks `key` up in the set indexed by `page_number`, updating LRU
    /// and hit/miss counters.
    pub fn lookup(&mut self, page_number: u64, key: u64) -> bool {
        self.clock += 1;
        for i in self.set_range(page_number) {
            if self.entries[i] == Some(key) {
                self.stamps[i] = self.clock;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Presence check without perturbing LRU or counters.
    pub fn probe(&self, page_number: u64, key: u64) -> bool {
        self.set_range(page_number)
            .any(|i| self.entries[i] == Some(key))
    }

    /// Inserts `key`, evicting the set's LRU entry if needed. Idempotent:
    /// re-inserting a resident key only refreshes its LRU position.
    pub fn insert(&mut self, page_number: u64, key: u64) {
        self.clock += 1;
        let range = self.set_range(page_number);
        if let Some(i) = range.clone().find(|&i| self.entries[i] == Some(key)) {
            self.stamps[i] = self.clock;
            return;
        }
        let slot = range
            .clone()
            .find(|&i| self.entries[i].is_none())
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.stamps[i])
                    .expect("ways >= 1 by TlbConfig::validate")
            });
        self.entries[slot] = Some(key);
        self.stamps[slot] = self.clock;
    }

    /// Lifetime (hits, misses) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Valid entries (diagnostics/tests).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        // 2 sets x 2 ways.
        Tlb::new(&TlbConfig::new(4, 2, 0))
    }

    #[test]
    fn miss_insert_hit() {
        let mut t = tiny();
        assert!(!t.lookup(0, 100));
        t.insert(0, 100);
        assert!(t.lookup(0, 100));
        assert_eq!(t.counters(), (1, 1));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_stalest_way() {
        let mut t = tiny();
        // Fill set 0 (even page numbers).
        t.insert(0, 10);
        t.insert(2, 12);
        assert!(t.lookup(0, 10)); // 10 now MRU
        t.insert(4, 14); // evicts 12
        assert!(t.probe(0, 10));
        assert!(!t.probe(2, 12));
        assert!(t.probe(4, 14));
    }

    #[test]
    fn sets_are_independent() {
        let mut t = tiny();
        t.insert(0, 10);
        t.insert(1, 11);
        t.insert(3, 13);
        t.insert(5, 15); // evicts 11 from set 1; set 0 untouched
        assert!(t.probe(0, 10));
        assert!(!t.probe(1, 11));
        assert_eq!(t.occupancy(), 3);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut t = tiny();
        t.insert(0, 10);
        t.insert(0, 10);
        assert_eq!(t.occupancy(), 1);
        // The refresh protected it from the next eviction.
        t.insert(2, 12);
        t.insert(0, 10);
        t.insert(4, 14);
        assert!(t.probe(0, 10));
    }

    #[test]
    fn probe_does_not_touch_lru_or_counters() {
        let mut t = tiny();
        t.insert(0, 10);
        t.insert(2, 12);
        let before = t.counters();
        assert!(t.probe(0, 10));
        assert_eq!(t.counters(), before);
        // 10 stayed LRU (probe did not refresh), so it is the victim.
        t.insert(4, 14);
        assert!(!t.probe(0, 10));
    }
}
