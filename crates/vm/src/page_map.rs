//! The deterministic page map: virtual→physical translation for 4 KB and
//! 2 MB pages, and the physical locations of the page-table entries a
//! radix walk traverses.
//!
//! Like the simulator's historical stateless translation, every mapping
//! is a pure function of `(core, virtual address)` — no allocation state,
//! full determinism, per-core disjoint physical footprints. 4 KB pages
//! use *exactly* the historical formula (`hermes-sim`'s `translate`), so
//! enabling the vm subsystem with 4 KB pages changes only *timing*, never
//! data placement. 2 MB huge pages map their whole region contiguously
//! from a 2 MB-aligned frame, preserving the offset within the huge page.
//!
//! The page table is the x86-64-style 4-level radix tree (9 bits per
//! level): a 4 KB translation walks 4 PTEs, a 2 MB translation 3 (the
//! level-2 entry *is* the leaf). Each PTE lives at a deterministic
//! physical cache line shared by all translations under the same prefix,
//! so walks exhibit realistic locality: neighbouring pages share every
//! upper level and walk traffic caches well until the footprint grows.

use hermes_types::{mix64, CoreId, LineAddr, PhysAddr, VirtAddr, PAGE_BITS};

/// log2 of the huge-page size (2 MB).
pub const HUGE_PAGE_BITS: u32 = 21;
/// Huge-page size in bytes.
pub const HUGE_PAGE_SIZE: usize = 1 << HUGE_PAGE_BITS;
/// Radix bits per page-table level.
pub const PT_LEVEL_BITS: u32 = 9;

/// Bits of physical frame number space, matching the historical stateless
/// translation (2^36 frames = 256 TB).
const FRAME_BITS: u32 = 36;
/// 4 KB frames per 2 MB huge page.
const FRAMES_PER_HUGE: u64 = 1 << (HUGE_PAGE_BITS - PAGE_BITS);
/// Physical line-address space the page tables live in (frame space plus
/// in-page line bits).
const PT_LINE_BITS: u32 = 42;

/// Salt separating the huge-page frame space from the 4 KB one.
const HUGE_SALT: u64 = 0x9E37_79B9_0000_0001;
/// Salt for the huge/base page-size selector hash.
const SIZE_SALT: u64 = 0x5851_F42D_4C95_7F2D;
/// Salt for page-table-entry placement.
const PTE_SALT: u64 = 0x2545_F491_4F6C_DD1D;

fn core_salt(core: CoreId) -> u64 {
    (core as u64 + 1) << 57
}

/// The per-core salt applied to data-frame selection: zero (shared by
/// every core) for addresses in the inter-core shared region, the
/// historical per-core salt otherwise — mirroring `hermes-sim`'s
/// stateless translation so vm on/off never changes data placement.
fn data_salt(core: CoreId, vaddr: VirtAddr) -> u64 {
    if vaddr.is_shared() {
        0
    } else {
        core_salt(core)
    }
}

/// See [module docs](self).
#[derive(Debug, Clone)]
pub struct PageMap {
    huge_page_pm: u32,
}

impl PageMap {
    /// A map where `huge_page_pm` per-mille of 2 MB regions are backed by
    /// huge pages (0 = all 4 KB, 1000 = all 2 MB).
    ///
    /// # Panics
    ///
    /// Panics if `huge_page_pm > 1000`.
    pub fn new(huge_page_pm: u32) -> Self {
        assert!(huge_page_pm <= 1000, "huge_page_pm is per-mille");
        Self { huge_page_pm }
    }

    /// Whether the 2 MB region containing `vaddr` is backed by a huge
    /// page for `core`. Deterministic per (core, region).
    pub fn is_huge(&self, core: CoreId, vaddr: VirtAddr) -> bool {
        match self.huge_page_pm {
            0 => false,
            1000 => true,
            pm => {
                let hvpn = vaddr.raw() >> HUGE_PAGE_BITS;
                mix64(hvpn ^ data_salt(core, vaddr) ^ SIZE_SALT) % 1000 < pm as u64
            }
        }
    }

    /// Translates `vaddr` for `core`; returns the physical address and
    /// whether a huge page backed it.
    pub fn translate(&self, core: CoreId, vaddr: VirtAddr) -> (PhysAddr, bool) {
        if self.is_huge(core, vaddr) {
            let hvpn = vaddr.raw() >> HUGE_PAGE_BITS;
            let base = mix64(hvpn ^ data_salt(core, vaddr) ^ HUGE_SALT)
                & ((1 << FRAME_BITS) - 1)
                & !(FRAMES_PER_HUGE - 1);
            let offset = vaddr.raw() & (HUGE_PAGE_SIZE as u64 - 1);
            (PhysAddr::new((base << PAGE_BITS) | offset), true)
        } else {
            // Bit-identical to the historical stateless translation.
            let pfn = mix64(vaddr.page_number() ^ data_salt(core, vaddr)) & ((1 << FRAME_BITS) - 1);
            (PhysAddr::from_frame(pfn, vaddr.offset_in_page()), false)
        }
    }

    /// Radix levels a walk for this page size traverses (the leaf PTE of
    /// a 2 MB page sits one level higher).
    pub fn walk_levels(huge: bool) -> usize {
        if huge {
            3
        } else {
            4
        }
    }

    /// The radix prefix resolved after the access at `depth` (0 = root).
    /// Independent of page size: a huge translation simply stops one
    /// level earlier, so upper-level prefixes — and therefore page-walk
    /// cache entries — are shared between page sizes.
    pub fn prefix(vaddr: VirtAddr, depth: usize) -> u64 {
        debug_assert!(depth < 4);
        vaddr.raw() >> (39 - PT_LEVEL_BITS as usize * depth)
    }

    /// Page-walk-cache key for the *non-leaf* entry at `depth`.
    pub fn pwc_key(vaddr: VirtAddr, depth: usize) -> u64 {
        debug_assert!(depth < 3, "leaf PTEs belong to the TLB, not the PWC");
        (Self::prefix(vaddr, depth) << 2) | depth as u64
    }

    /// Physical cache line holding the PTE the walker reads at `depth`
    /// for `vaddr`. Shared by every translation under the same prefix,
    /// which is what gives page-table accesses their cache locality.
    pub fn pte_line(&self, core: CoreId, vaddr: VirtAddr, depth: usize) -> LineAddr {
        let prefix = Self::prefix(vaddr, depth);
        let raw = mix64(prefix ^ ((depth as u64 + 1) << 49) ^ core_salt(core) ^ PTE_SALT);
        LineAddr::new(raw & ((1 << PT_LINE_BITS) - 1))
    }

    /// TLB lookup key for a translation: the page number tagged with the
    /// page size and (for shared structures) the owning core.
    ///
    /// # Panics
    ///
    /// Debug-panics if `core >= 256` (the tag packing's headroom).
    pub fn tlb_key(core: Option<CoreId>, page_number: u64, huge: bool) -> u64 {
        let core = core.map(|c| c as u64 + 1).unwrap_or(0);
        debug_assert!(core <= 256, "core id overflows TLB tag packing");
        debug_assert!(page_number < 1 << 52);
        page_number | (core << 53) | ((huge as u64) << 62)
    }

    /// The page number the TLB indexes with: `vaddr >> 12` for 4 KB,
    /// `vaddr >> 21` for huge pages.
    pub fn page_number(vaddr: VirtAddr, huge: bool) -> u64 {
        if huge {
            vaddr.raw() >> HUGE_PAGE_BITS
        } else {
            vaddr.page_number()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_pages_match_historical_translation() {
        // The 4 KB formula must be bit-identical to hermes-sim's
        // stateless translate (same mix64, same salt, same frame mask).
        let map = PageMap::new(0);
        for (core, raw) in [(0usize, 0x1234_5678u64), (3, 0xdead_beef_0000), (7, 0x42)] {
            let v = VirtAddr::new(raw);
            let (p, huge) = map.translate(core, v);
            assert!(!huge);
            let expect = mix64(v.page_number() ^ ((core as u64 + 1) << 57)) & ((1 << 36) - 1);
            assert_eq!(p.page_number(), expect);
            assert_eq!(p.offset_in_page(), v.offset_in_page());
        }
    }

    #[test]
    fn huge_pages_preserve_huge_offset_and_are_aligned() {
        let map = PageMap::new(1000);
        let v = VirtAddr::new(0x1234_5678);
        let (p, huge) = map.translate(2, v);
        assert!(huge);
        assert_eq!(
            p.raw() & (HUGE_PAGE_SIZE as u64 - 1),
            v.raw() & (HUGE_PAGE_SIZE as u64 - 1)
        );
        assert_eq!(
            p.raw() >> HUGE_PAGE_BITS << HUGE_PAGE_BITS,
            p.raw() & !(HUGE_PAGE_SIZE as u64 - 1)
        );
        // Two addresses in the same 2 MB region share the frame base.
        let (q, _) = map.translate(2, VirtAddr::new(0x1234_5678 ^ 0xF_FFFF));
        assert_eq!(
            p.raw() & !(HUGE_PAGE_SIZE as u64 - 1),
            q.raw() & !(HUGE_PAGE_SIZE as u64 - 1)
        );
    }

    #[test]
    fn fractional_huge_selection_is_deterministic_and_mixed() {
        let map = PageMap::new(500);
        let mut huge = 0;
        for i in 0..1000u64 {
            let v = VirtAddr::new(i << HUGE_PAGE_BITS);
            assert_eq!(map.is_huge(0, v), map.is_huge(0, v));
            if map.is_huge(0, v) {
                huge += 1;
            }
        }
        assert!((300..700).contains(&huge), "~half should be huge: {huge}");
    }

    #[test]
    fn cores_have_disjoint_mappings() {
        for pm in [0, 1000] {
            let map = PageMap::new(pm);
            let v = VirtAddr::new(0x7000_0000);
            let frames: std::collections::HashSet<u64> = (0..8)
                .map(|c| map.translate(c, v).0.raw() >> PAGE_BITS)
                .collect();
            assert_eq!(frames.len(), 8, "huge_pm={pm}");
        }
    }

    #[test]
    fn shared_region_aliases_across_cores_both_page_sizes() {
        for pm in [0, 500, 1000] {
            let map = PageMap::new(pm);
            let v = VirtAddr::new(hermes_types::SHARED_BASE + 0x1234_5678);
            let results: std::collections::HashSet<(u64, bool)> = (0..8)
                .map(|c| {
                    let (p, huge) = map.translate(c, v);
                    (p.raw(), huge)
                })
                .collect();
            assert_eq!(
                results.len(),
                1,
                "shared pages must map identically (huge_pm={pm})"
            );
        }
    }

    #[test]
    fn walk_prefixes_nest_and_leafs_differ_per_page() {
        let a = VirtAddr::new(0x7fff_0000_1000);
        let b = VirtAddr::new(0x7fff_0000_2000); // next 4 KB page
                                                 // Upper levels shared, leaf differs.
        for d in 0..3 {
            assert_eq!(PageMap::prefix(a, d), PageMap::prefix(b, d));
        }
        assert_ne!(PageMap::prefix(a, 3), PageMap::prefix(b, 3));
        let map = PageMap::new(0);
        for d in 0..3 {
            assert_eq!(map.pte_line(0, a, d), map.pte_line(0, b, d));
        }
        assert_ne!(map.pte_line(0, a, 3), map.pte_line(0, b, 3));
        // Different cores walk different tables.
        assert_ne!(map.pte_line(0, a, 3), map.pte_line(1, a, 3));
    }

    #[test]
    fn huge_walk_is_one_level_shorter() {
        assert_eq!(PageMap::walk_levels(false), 4);
        assert_eq!(PageMap::walk_levels(true), 3);
        // The huge leaf (depth 2) prefix is the huge page number.
        let v = VirtAddr::new(0x1234_5678_9abc);
        assert_eq!(PageMap::prefix(v, 2), v.raw() >> HUGE_PAGE_BITS);
        assert_eq!(PageMap::prefix(v, 3), v.raw() >> PAGE_BITS);
    }

    #[test]
    fn tlb_keys_separate_cores_sizes_and_pages() {
        let k = |c, p, h| PageMap::tlb_key(c, p, h);
        assert_ne!(k(None, 5, false), k(None, 5, true));
        assert_ne!(k(Some(0), 5, false), k(Some(1), 5, false));
        assert_ne!(k(None, 5, false), k(Some(0), 5, false));
        assert_ne!(k(None, 5, false), k(None, 6, false));
    }
}
